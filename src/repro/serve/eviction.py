"""Byte/entry-bounded LRU eviction for the on-disk result cache.

A one-shot CLI run can let ``.simcache/`` grow without bound; a
long-running experiment server cannot.  This module gives the cache a
lifecycle:

* :func:`scan_entries` — one consistent view of the cache directory (the
  same scan ``repro cache stats`` reports and the bounds enforce);
* :func:`prune` — evict least-recently-used entries (by mtime, the cheap
  proxy both readers and writers refresh) until the cache fits a byte
  and/or entry bound;
* :func:`maybe_evict` — the automatic hook :func:`repro.analysis.runner.
  _store_disk` calls after every write when ``REPRO_SIM_CACHE_MAX_BYTES``
  or ``REPRO_SIM_CACHE_MAX_ENTRIES`` is set.

Two protections keep eviction safe under concurrency:

* **in-flight registry** — the scheduler registers keys it is currently
  simulating or serving (:func:`protect` / :func:`unprotect`); those keys
  are never evicted, in any process that shares the registry;
* **write grace window** — entries younger than ``min_age_seconds`` are
  never evicted, which protects just-written entries from *other*
  processes (workers, concurrent servers) whose registries this process
  cannot see.

Eviction is best-effort: a concurrently deleted file is not an error, and
the atomic-write discipline in ``runner.py`` means removing an entry can
never corrupt a reader — at worst the key re-simulates.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.analysis import runner as _runner

__all__ = [
    "CacheEntry",
    "PruneReport",
    "DEFAULT_GRACE_SECONDS",
    "maybe_evict",
    "protect",
    "protected_keys",
    "prune",
    "resolve_max_bytes",
    "resolve_max_entries",
    "scan_entries",
    "unprotect",
]

#: Entries younger than this many seconds are never auto-evicted: a
#: just-written entry must survive long enough for its writer (possibly a
#: worker in another process) to read it back and merge it.
DEFAULT_GRACE_SECONDS = 30.0

#: Keys currently in flight somewhere in this process (scheduler jobs,
#: requests being served).  Guarded by :data:`_protect_lock`.
_PROTECTED: dict[str, int] = {}
_protect_lock = threading.Lock()


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk cache entry as the eviction policy sees it."""

    key: str
    path: Path
    size: int
    mtime: float


@dataclass(frozen=True)
class PruneReport:
    """What one :func:`prune` pass did (or, dry-run, would do)."""

    scanned: int
    removed: tuple[str, ...]
    freed_bytes: int
    kept_entries: int
    kept_bytes: int
    protected_kept: int
    dry_run: bool

    def as_dict(self) -> dict[str, object]:
        return {
            "scanned": self.scanned,
            "removed": list(self.removed),
            "freed_bytes": self.freed_bytes,
            "kept_entries": self.kept_entries,
            "kept_bytes": self.kept_bytes,
            "protected_kept": self.protected_kept,
            "dry_run": self.dry_run,
        }

    def render(self) -> str:
        verb = "would evict" if self.dry_run else "evicted"
        return (
            f"{verb} {len(self.removed)} of {self.scanned} entries "
            f"({self.freed_bytes} bytes freed, {self.kept_entries} entries / "
            f"{self.kept_bytes} bytes kept, {self.protected_kept} protected)"
        )


def protect(key: str) -> None:
    """Register ``key`` as in flight: it will not be evicted until
    :func:`unprotect` balances this call (calls nest)."""
    # The lock is shared with pool worker threads (prune / protected_keys
    # run off-loop), so asyncio.Lock cannot replace it; the critical
    # section is a single dict update — microseconds, unconditionally.
    with _protect_lock:  # lint-ok: SIM010 microsecond dict update, shared with worker threads
        _PROTECTED[key] = _PROTECTED.get(key, 0) + 1


def unprotect(key: str) -> None:
    """Release one :func:`protect` registration of ``key``."""
    with _protect_lock:  # lint-ok: SIM010 microsecond dict update, shared with worker threads
        count = _PROTECTED.get(key, 0) - 1
        if count <= 0:
            _PROTECTED.pop(key, None)
        else:
            _PROTECTED[key] = count


def protected_keys() -> frozenset[str]:
    """Snapshot of the in-flight key registry."""
    with _protect_lock:
        return frozenset(_PROTECTED)


def _parse_positive_int(raw: str | None) -> int | None:
    if raw is None:
        return None
    raw = raw.strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def resolve_max_bytes(max_bytes: int | None = None) -> int | None:
    """Byte bound: explicit arg > ``REPRO_SIM_CACHE_MAX_BYTES`` > None."""
    if max_bytes is not None:
        return max_bytes if max_bytes > 0 else None
    return _parse_positive_int(os.environ.get("REPRO_SIM_CACHE_MAX_BYTES"))


def resolve_max_entries(max_entries: int | None = None) -> int | None:
    """Entry bound: explicit arg > ``REPRO_SIM_CACHE_MAX_ENTRIES`` > None."""
    if max_entries is not None:
        return max_entries if max_entries > 0 else None
    return _parse_positive_int(os.environ.get("REPRO_SIM_CACHE_MAX_ENTRIES"))


def scan_entries(directory: Path | None = None) -> list[CacheEntry]:
    """Every cache entry under ``directory`` (default: the active cache
    dir), tolerant of files deleted mid-scan.  Sorted by key for a stable
    view; eviction re-sorts by recency."""
    if directory is None:
        directory = _runner._cache_dir()
    if not directory.exists():
        return []
    entries: list[CacheEntry] = []
    for path in sorted(directory.glob("*.pkl")):
        try:
            stat = path.stat()
        except OSError:
            continue  # evicted or replaced by a concurrent process
        entries.append(
            CacheEntry(
                key=path.stem, path=path, size=stat.st_size, mtime=stat.st_mtime
            )
        )
    return entries


def prune(
    max_bytes: int | None = None,
    max_entries: int | None = None,
    *,
    protect_keys: Iterable[str] = (),
    min_age_seconds: float = 0.0,
    directory: Path | None = None,
    dry_run: bool = False,
) -> PruneReport:
    """Evict LRU entries until the cache fits the given bounds.

    Entries are removed oldest-mtime-first, skipping any key in
    ``protect_keys`` or the process-wide in-flight registry, and any entry
    younger than ``min_age_seconds``.  Bounds of ``None`` mean
    "unbounded" on that axis; with both ``None`` this is a no-op report.
    ``dry_run`` computes the eviction set without deleting anything.
    """
    entries = scan_entries(directory)
    shielded = set(protect_keys) | protected_keys()
    now = time.time()  # lint-ok: SIM002 eviction grace-window bookkeeping, never touches results
    total_bytes = sum(entry.size for entry in entries)
    total_entries = len(entries)
    removed: list[str] = []
    freed = 0
    protected_kept = 0

    def over_bound() -> bool:
        if max_bytes is not None and total_bytes > max_bytes:
            return True
        if max_entries is not None and total_entries > max_entries:
            return True
        return False

    # Oldest first; ties broken by key so the order is reproducible.
    for entry in sorted(entries, key=lambda e: (e.mtime, e.key)):
        if not over_bound():
            break
        if entry.key in shielded or (now - entry.mtime) < min_age_seconds:
            protected_kept += 1
            continue
        if not dry_run:
            try:
                entry.path.unlink()
            except OSError:
                continue  # already gone — someone else evicted it
        removed.append(entry.key)
        freed += entry.size
        total_bytes -= entry.size
        total_entries -= 1

    if not dry_run:
        from repro.observe import telemetry

        tel = telemetry.maybe()
        if tel is not None:
            tel.counter(
                "repro_cache_prune_passes_total",
                "Eviction passes executed over the disk cache.",
            ).inc()
            if removed:
                tel.counter(
                    "repro_cache_evictions_total",
                    "Disk-cache entries evicted by the LRU bounds.",
                ).inc(len(removed))
                tel.counter(
                    "repro_cache_evicted_bytes_total",
                    "Bytes reclaimed by disk-cache eviction.",
                ).inc(freed)

    return PruneReport(
        scanned=len(entries),
        removed=tuple(removed),
        freed_bytes=freed,
        kept_entries=total_entries,
        kept_bytes=total_bytes,
        protected_kept=protected_kept,
        dry_run=dry_run,
    )


def maybe_evict(
    protect_keys: Iterable[str] = (),
    *,
    max_bytes: int | None = None,
    max_entries: int | None = None,
    directory: Path | None = None,
    min_age_seconds: float = DEFAULT_GRACE_SECONDS,
) -> PruneReport | None:
    """Run one eviction pass if any bound is configured; None otherwise.

    This is the automatic hook on the cache write path: bounds default to
    the ``REPRO_SIM_CACHE_MAX_BYTES`` / ``REPRO_SIM_CACHE_MAX_ENTRIES``
    environment variables, and the write-grace window is on.
    """
    max_bytes = resolve_max_bytes(max_bytes)
    max_entries = resolve_max_entries(max_entries)
    if max_bytes is None and max_entries is None:
        return None
    return prune(
        max_bytes,
        max_entries,
        protect_keys=protect_keys,
        min_age_seconds=min_age_seconds,
        directory=directory,
    )
