"""The asyncio experiment server: NDJSON over a local TCP socket.

One :class:`ExperimentServer` owns a :class:`~repro.serve.scheduler.
Scheduler` and listens on localhost.  Each connection multiplexes any
number of concurrent ``run`` requests; each request expands to jobs via
the protocol normalizer, submits them (single-flight across *all*
connections), streams progress events when asked, and reports per-job
``result`` / ``error`` lines as flights resolve, closing with one
``done`` line.

Failure scoping is per request: a job that times out, crashes its
worker, or hits a corrupt cache tier produces a typed ``error`` for its
own request only — other requests (even ones sharing the connection)
keep running.  A dropped connection releases every flight the
connection still holds, so abandoned work is cancelled unless another
client shares the flight.
"""

from __future__ import annotations

import asyncio
import os
from collections.abc import Callable
from typing import Any

from repro.analysis import runner as _runner
from repro.analysis.parallel import SimJob
from repro.observe import stream as _stream
from repro.observe import telemetry
from repro.observe.telemetry.httpd import MetricsEndpoint
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    RunRequest,
    ServeError,
    decode_line,
    encode_message,
    parse_run_request,
    result_summary,
)
from repro.serve.scheduler import Flight, Scheduler
from repro.serve.snapshot import load_index

__all__ = ["ExperimentServer", "resolve_max_pending"]


def resolve_max_pending(max_pending: int | None = None) -> int:
    """Queue bound: explicit arg > ``REPRO_SERVE_MAX_PENDING`` > 1024."""
    if max_pending is not None and max_pending > 0:
        return max_pending
    raw = os.environ.get("REPRO_SERVE_MAX_PENDING", "").strip()
    if raw:
        try:
            value = int(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return 1024


class _Connection:
    """Per-connection state: serialized writes + active request tasks."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.requests: dict[str, asyncio.Task[None]] = {}


class ExperimentServer:
    """Serve experiment matrices over localhost NDJSON.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    scheduler:
        Bring your own (tests); default builds one from the remaining
        keyword arguments.
    shards, mode, job_timeout:
        Forwarded to :class:`~repro.serve.scheduler.Scheduler`.
    max_pending:
        Refuse new ``run`` requests (``overloaded``) while this many
        flights are already queued.
    metrics_port:
        When not None, also bind a telemetry HTTP endpoint (``/metrics``
        Prometheus text, ``/metrics.json``, ``/healthz``) on this port
        (0 picks a free one; read it back from :attr:`metrics_port`
        after :meth:`start`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        scheduler: Scheduler | None = None,
        shards: int | None = None,
        mode: str = "process",
        job_timeout: float | None = None,
        max_pending: int | None = None,
        metrics_port: int | None = None,
        log: Callable[[str], None] = print,
    ) -> None:
        self.host = host
        self.port = port
        self.scheduler = scheduler or Scheduler(
            shards, mode=mode, job_timeout=job_timeout
        )
        self.max_pending = resolve_max_pending(max_pending)
        self.metrics_port = metrics_port
        self.log = log
        self._server: asyncio.AbstractServer | None = None
        self._metrics: MetricsEndpoint | None = None
        self._connections: dict[_Connection, asyncio.Task[None]] = {}

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Warm-start the cache index, start the scheduler, bind."""
        index, source = await asyncio.to_thread(load_index)
        self.log(f"cache index: {len(index)} entries ({source})")
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.log(f"serving on {self.host}:{self.port}")
        if self.metrics_port is not None:
            self._metrics = MetricsEndpoint(self.host, self.metrics_port)
            await self._metrics.start()
            self.metrics_port = self._metrics.port
            self.log(f"metrics on http://{self.host}:{self.metrics_port}/metrics")

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._metrics is not None:
            await self._metrics.close()
            self._metrics = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Hang up on every client (their handlers see EOF and exit on
        # their own — cancelling them trips asyncio's stream-task
        # done-callback into logging spurious CancelledErrors).
        for conn in list(self._connections):
            conn.writer.close()
        if self._connections:
            await asyncio.gather(
                *self._connections.values(), return_exceptions=True
            )
        await self.scheduler.close()

    # -- connection handling ------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        task = asyncio.current_task()
        if task is not None:
            self._connections[conn] = task
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    await self._send(
                        conn,
                        ServeError(
                            "bad-request", f"line exceeds {MAX_LINE_BYTES} bytes"
                        ).as_message(),
                    )
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                await self._handle_line(conn, line)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.pop(conn, None)
            # The client is gone: drop its interest in every flight.
            for request_task in list(conn.requests.values()):
                request_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(self, conn: _Connection, line: bytes) -> None:
        try:
            message = decode_line(line)
        except ServeError as error:
            await self._send(conn, error.as_message())
            return
        kind = message.get("type")
        request_id = message.get("id")
        rid = request_id if isinstance(request_id, str) else None
        tel = telemetry.maybe()
        if tel is not None:
            tel.counter(
                "repro_serve_requests_total",
                "Protocol messages received, by verb.",
                labels=("verb",),
            ).inc(verb=kind if isinstance(kind, str) else "invalid")
        if kind == "ping":
            await self._send(conn, {"type": "pong", "protocol": PROTOCOL_VERSION})
        elif kind == "status":
            # The cache summary scans the cache directory on disk; hop it
            # to a worker thread so a cold or large cache cannot stall
            # every other connection (SIM009).
            cache = await asyncio.to_thread(_runner.cache_stats)
            await self._send(conn, self._status_message(cache))
        elif kind == "cancel":
            task = conn.requests.get(rid) if rid is not None else None
            if task is None:
                await self._send(
                    conn,
                    ServeError(
                        "bad-request", f"no active request {rid!r} to cancel"
                    ).as_message(rid),
                )
            else:
                task.cancel()
        elif kind == "run":
            try:
                request = parse_run_request(message)
            except ServeError as error:
                await self._send(conn, error.as_message(rid))
                return
            if request.id in conn.requests:
                await self._send(
                    conn,
                    ServeError(
                        "bad-request", f"request id {request.id!r} already active"
                    ).as_message(request.id),
                )
                return
            task = asyncio.create_task(
                self._handle_run(conn, request), name=f"run-{request.id}"
            )
            conn.requests[request.id] = task
            task.add_done_callback(
                lambda _t, rid=request.id: conn.requests.pop(rid, None)
            )
        else:
            await self._send(
                conn,
                ServeError(
                    "bad-request", f"unknown message type {kind!r}"
                ).as_message(rid),
            )

    def _status_message(self, cache: dict[str, Any]) -> dict[str, Any]:
        tel = telemetry.maybe()
        return {
            "type": "status",
            "protocol": PROTOCOL_VERSION,
            "scheduler": self.scheduler.stats(),
            "cache": cache,
            "max_pending": self.max_pending,
            # None when REPRO_SIM_TELEMETRY is off; else the full metrics
            # registry snapshot (what `repro top` renders).
            "telemetry": None if tel is None else tel.snapshot(),
        }

    # -- request handling ---------------------------------------------------

    async def _handle_run(self, conn: _Connection, request: RunRequest) -> None:
        flights: list[tuple[SimJob, Flight]] = []
        subscriptions: list[tuple[Flight, Any]] = []
        sink = telemetry.maybe_spans()
        request_span = (
            sink.start_span(
                "serve.request",
                parent=request.trace,
                attrs={"id": request.id, "jobs": len(request.jobs)},
            )
            if sink is not None
            else None
        )
        try:
            queued = sum(len(shard.heap) for shard in self.scheduler.shards)
            if queued >= self.max_pending:
                raise ServeError(
                    "overloaded",
                    f"{queued} flights already queued (bound {self.max_pending})",
                )
            for job in request.jobs:
                # submit() probes the disk cache for the single job key
                # before dispatching — a bounded read the serve design
                # accepts on-loop (docs/SERVICE.md); everything heavier
                # already runs in the worker pool.
                flight = self.scheduler.submit(  # lint-ok: SIM009 bounded single-key cache probe
                    job,
                    priority=request.priority,
                    timeout=request.timeout,
                    trace=None if request_span is None else request_span.context,
                )
                flights.append((job, flight))
            await self._send(
                conn,
                {
                    "type": "accepted",
                    "id": request.id,
                    "protocol": PROTOCOL_VERSION,
                    "jobs": len(flights),
                },
            )
            if request.stream:
                for _job, flight in flights:
                    callback = self._subscribe(conn, request.id, flight)
                    subscriptions.append((flight, callback))
            watchers = [
                asyncio.create_task(
                    self._watch_job(conn, request, job, flight),
                    name=f"watch-{request.id}-{job.workload}",
                )
                for job, flight in flights
            ]
            statuses = await asyncio.gather(*watchers)
            await self._send(
                conn,
                {
                    "type": "done",
                    "id": request.id,
                    "jobs": len(statuses),
                    "cached": statuses.count("cached"),
                    "simulated": statuses.count("simulated"),
                    "failed": statuses.count("failed"),
                },
            )
        except asyncio.CancelledError:
            await self._send(
                conn,
                ServeError(
                    "cancelled", f"request {request.id} cancelled"
                ).as_message(request.id),
            )
        except ServeError as error:
            await self._send(conn, error.as_message(request.id))
        except (ConnectionError, OSError):
            pass  # the client is gone; the finally block cleans up
        finally:
            if request_span is not None and sink is not None:
                sink.finish(request_span)
            for flight, callback in subscriptions:
                try:
                    flight.subscribers.remove(callback)
                except ValueError:
                    pass
            for _job, flight in flights:
                self.scheduler.release(flight)

    def _subscribe(
        self, conn: _Connection, request_id: str, flight: Flight
    ) -> Callable[[dict[str, Any]], None]:
        """Forward a flight's progress events to this request's stream."""

        def callback(event: dict[str, Any]) -> None:
            message = {"type": "event", "id": request_id, **event}
            asyncio.get_running_loop().create_task(self._send(conn, message))

        flight.subscribers.append(callback)
        return callback

    async def _watch_job(
        self,
        conn: _Connection,
        request: RunRequest,
        job: SimJob,
        flight: Flight,
    ) -> str:
        """Await one flight, streaming its telemetry and final line."""
        try:
            outcome = await flight.wait()
        except ServeError as error:
            message = error.as_message(request.id)
            message["key"] = job.key
            message["workload"] = job.workload
            await self._send(conn, message)
            return "failed"
        if request.stream:
            events = [
                _stream.job_finished_event(
                    job.key, job.workload, outcome.cached, outcome.seconds
                )
            ]
            events.extend(
                _stream.interval_events(job.key, job.workload, outcome.result.intervals)
            )
            if outcome.taxonomy is not None:
                events.append(
                    _stream.taxonomy_event(job.key, job.workload, outcome.taxonomy)
                )
            for event in events:
                await self._send(conn, {"type": "event", "id": request.id, **event})
        summary = result_summary(job, outcome.result, outcome.cached)
        summary["source"] = outcome.source
        summary["seconds"] = round(outcome.seconds, 4)
        await self._send(conn, {"type": "result", "id": request.id, **summary})
        return "cached" if outcome.cached else "simulated"

    # -- plumbing -----------------------------------------------------------

    async def _send(self, conn: _Connection, message: dict[str, Any]) -> None:
        try:
            async with conn.lock:
                conn.writer.write(encode_message(message))
                await conn.writer.drain()
        except (ConnectionError, OSError):
            pass  # client gone; request teardown happens in _handle_client
