"""Async client for the experiment server.

:class:`ServeClient` opens one connection and multiplexes requests over
it: a background pump routes incoming lines to the request that owns
them by echoed ``id``.  :meth:`ServeClient.run` is the high-level call —
send a matrix, collect streamed events (via callback), per-job results
and per-job errors, and return a :class:`RunReply` when the server's
``done`` line arrives.  Request-scoped failures (``overloaded``,
``cancelled``, ``bad-request`` …) raise :class:`ServeRequestError`.

Example
-------
>>> async with ServeClient(port=port) as client:
...     reply = await client.run(["fp_01"], configs=[{"ucp": True}])
...     reply.results[0]["ipc"]
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.observe import telemetry
from repro.serve.protocol import decode_line, encode_message

__all__ = ["RunReply", "ServeClient", "ServeRequestError"]


class ServeRequestError(Exception):
    """A request failed as a whole; ``code`` is the protocol error code."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(message)


@dataclass
class RunReply:
    """Everything one ``run`` request produced."""

    request_id: str
    results: list[dict[str, Any]] = field(default_factory=list)
    errors: list[dict[str, Any]] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    done: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    def result_for(self, workload: str) -> dict[str, Any] | None:
        for record in self.results:
            if record.get("workload") == workload:
                return record
        return None


class ServeClient:
    """One NDJSON connection to an :class:`~repro.serve.server.
    ExperimentServer`; safe for concurrent requests from many tasks."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pump_task: asyncio.Task[None] | None = None
        self._pending: dict[str, asyncio.Queue[dict[str, Any] | None]] = {}
        self._control: asyncio.Queue[dict[str, Any] | None] = asyncio.Queue()
        self._control_lock = asyncio.Lock()
        self._ids = itertools.count(1)
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._pump_task = asyncio.create_task(self._pump(), name="serve-client-pump")
        return self

    async def aclose(self) -> None:
        self._closed = True
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc: object) -> None:
        await self.aclose()

    # -- requests -----------------------------------------------------------

    async def run(
        self,
        workloads: list[str],
        *,
        configs: list[dict[str, Any]] | None = None,
        n_instructions: int | None = None,
        priority: int = 0,
        timeout: float | None = None,
        stream: bool = False,
        on_event: Callable[[dict[str, Any]], None] | None = None,
        request_id: str | None = None,
    ) -> RunReply:
        """Run one experiment matrix to completion.

        Per-job failures land in ``reply.errors`` (the rest of the matrix
        still completes); request-scoped failures raise
        :class:`ServeRequestError`.

        With ``REPRO_SIM_TELEMETRY`` on, the request opens a
        ``client.run`` root span and propagates its context in the
        protocol ``trace`` field, so the served job is traceable
        client → server → shard → worker as one connected span tree.
        """
        rid = request_id if request_id is not None else f"r{next(self._ids)}"
        matrix: dict[str, Any] = {"workloads": list(workloads)}
        if configs is not None:
            matrix["configs"] = configs
        if n_instructions is not None:
            matrix["n_instructions"] = n_instructions
        message: dict[str, Any] = {
            "type": "run",
            "id": rid,
            "matrix": matrix,
            "priority": priority,
            "stream": stream,
        }
        if timeout is not None:
            message["timeout"] = timeout
        sink = telemetry.maybe_spans()
        root_span = (
            sink.start_span(
                "client.run", attrs={"id": rid, "workloads": list(workloads)}
            )
            if sink is not None
            else None
        )
        if root_span is not None:
            message["trace"] = root_span.context.as_wire()
        queue: asyncio.Queue[dict[str, Any] | None] = asyncio.Queue()
        self._pending[rid] = queue
        reply = RunReply(request_id=rid)
        try:
            await self._write(message)
            while True:
                received = await queue.get()
                if received is None:
                    raise ServeRequestError(
                        "internal", "connection closed mid-request"
                    )
                kind = received.get("type")
                if kind == "accepted":
                    continue
                if kind == "event":
                    reply.events.append(received)
                    if on_event is not None:
                        on_event(received)
                    continue
                if kind == "result":
                    reply.results.append(received)
                    continue
                if kind == "error":
                    if "key" in received:
                        reply.errors.append(received)  # job-scoped
                        continue
                    raise ServeRequestError(
                        str(received.get("code", "internal")),
                        str(received.get("message", "request failed")),
                    )
                if kind == "done":
                    reply.done = received
                    return reply
        finally:
            if root_span is not None and sink is not None:
                sink.finish(
                    root_span,
                    results=len(reply.results),
                    errors=len(reply.errors),
                )
            self._pending.pop(rid, None)

    async def cancel(self, request_id: str) -> None:
        """Ask the server to cancel an in-flight request by id."""
        await self._write({"type": "cancel", "id": request_id})

    async def ping(self) -> dict[str, Any]:
        return await self._control_request({"type": "ping"})

    async def status(self) -> dict[str, Any]:
        return await self._control_request({"type": "status"})

    # -- internals ----------------------------------------------------------

    async def _control_request(self, message: dict[str, Any]) -> dict[str, Any]:
        async with self._control_lock:
            await self._write(message)
            received = await self._control.get()
            if received is None:
                raise ServeRequestError("internal", "connection closed")
            return received

    async def _write(self, message: dict[str, Any]) -> None:
        if self._writer is None:
            raise ServeRequestError("internal", "client is not connected")
        self._writer.write(encode_message(message))
        await self._writer.drain()

    async def _pump(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    message = decode_line(line)
                except Exception:
                    continue  # a malformed server line; keep pumping
                rid = message.get("id")
                queue = (
                    self._pending.get(rid) if isinstance(rid, str) else None
                )
                if queue is not None:
                    queue.put_nowait(message)
                else:
                    self._control.put_nowait(message)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            # Wake every waiter: the connection is gone.
            for queue in self._pending.values():
                queue.put_nowait(None)
            self._control.put_nowait(None)
