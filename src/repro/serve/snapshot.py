"""Warm-start index snapshot for the result cache.

A server restart should not pay a full directory rescan (thousands of
``stat`` calls on a production-sized cache) just to know what it has.
:func:`write_snapshot` persists the entry index — ``key -> (size,
mtime)`` — as one JSON file inside the cache directory, written with the
same temp-file + ``os.replace`` discipline as the entries themselves;
:func:`read_snapshot` loads it back with one file read.

The snapshot is advisory: it carries the ``CACHE_VERSION`` it was taken
under and a schema version, and anything stale, unparsable or
version-mismatched reads as "no snapshot" (callers fall back to
:func:`repro.serve.eviction.scan_entries`).  Entries that vanish after
the snapshot was taken are discovered lazily by the envelope check on
load, exactly as before.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.analysis import runner as _runner
from repro.serve.eviction import CacheEntry, scan_entries

__all__ = [
    "SNAPSHOT_FILE",
    "SNAPSHOT_SCHEMA",
    "load_index",
    "read_snapshot",
    "snapshot_path",
    "write_snapshot",
]

#: Snapshot filename inside the cache directory.  Not ``*.pkl``, so entry
#: scans, eviction and ``repro cache clear`` never mistake it for data.
SNAPSHOT_FILE = "cache-index.json"

#: Bump when the snapshot layout changes; mismatches read as "no snapshot".
SNAPSHOT_SCHEMA = 1


def snapshot_path(directory: Path | None = None) -> Path:
    if directory is None:
        directory = _runner._cache_dir()
    return directory / SNAPSHOT_FILE


def write_snapshot(directory: Path | None = None) -> Path:
    """Scan the cache directory and atomically persist its index."""
    if directory is None:
        directory = _runner._cache_dir()
    entries = scan_entries(directory)
    payload = {
        "schema": SNAPSHOT_SCHEMA,
        "cache_version": _runner.CACHE_VERSION,
        "entries": {
            entry.key: {"bytes": entry.size, "mtime": entry.mtime}
            for entry in entries
        },
    }
    directory.mkdir(parents=True, exist_ok=True)
    path = snapshot_path(directory)
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=f".{SNAPSHOT_FILE}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def read_snapshot(directory: Path | None = None) -> dict[str, CacheEntry] | None:
    """Load the index with one file read; None when absent or unusable."""
    if directory is None:
        directory = _runner._cache_dir()
    path = snapshot_path(directory)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        payload = json.loads(raw)
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("schema") != SNAPSHOT_SCHEMA:
        return None
    if payload.get("cache_version") != _runner.CACHE_VERSION:
        return None
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        return None
    index: dict[str, CacheEntry] = {}
    for key, meta in entries.items():
        if not isinstance(meta, dict):
            return None
        size = meta.get("bytes")
        mtime = meta.get("mtime")
        if not isinstance(size, int) or not isinstance(mtime, (int, float)):
            return None
        index[str(key)] = CacheEntry(
            key=str(key),
            path=directory / f"{key}.pkl",
            size=size,
            mtime=float(mtime),
        )
    return index


def load_index(
    directory: Path | None = None,
) -> tuple[dict[str, CacheEntry], str]:
    """The warm-start entry point: ``(index, source)``.

    Returns the snapshot when one is valid (``source == "snapshot"``, one
    file read); otherwise rescans the directory and writes a fresh
    snapshot so the *next* start is warm (``source == "rescan"``).
    """
    index = read_snapshot(directory)
    if index is not None:
        return index, "snapshot"
    entries = {entry.key: entry for entry in scan_entries(directory)}
    try:
        write_snapshot(directory)
    except OSError:
        pass  # warm start is an optimisation, never a requirement
    return entries, "rescan"
