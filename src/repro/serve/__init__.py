"""Simulation-as-a-service: the asyncio experiment server.

``repro.serve`` turns the parallel experiment engine
(:mod:`repro.analysis.parallel`) and the checksummed result cache
(:mod:`repro.analysis.runner`) into a long-running service:

* :mod:`repro.serve.protocol` — the NDJSON wire protocol: experiment-matrix
  requests, typed error codes, and the normalization that maps a request
  onto exactly the cache keys ``runner.py`` would use;
* :mod:`repro.serve.scheduler` — the async scheduler: sharded worker
  pools, per-request priority and cancellation, cross-client
  single-flight, retry-with-backoff, per-job timeouts, and worker-crash
  quarantine;
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — the asyncio
  front door (``repro serve``) and the matching async client;
* :mod:`repro.serve.eviction` / :mod:`repro.serve.snapshot` — cache
  lifecycle for service life: byte/entry-bounded LRU eviction and the
  warm-start index snapshot.

See ``docs/SERVICE.md`` for the protocol and failure semantics.
"""

from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.protocol import PROTOCOL_VERSION, ServeError
from repro.serve.scheduler import Scheduler
from repro.serve.server import ExperimentServer

__all__ = [
    "PROTOCOL_VERSION",
    "ExperimentServer",
    "Scheduler",
    "ServeClient",
    "ServeError",
    "ServeRequestError",
]
