"""Shared experiment plumbing: scales, configurations, metrics.

The paper evaluates on the subset of CVP-1 traces showing at least a 5%
IPC improvement under an ideal µ-op cache (Section V); ``select_workloads``
applies the same criterion to our suite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.parallel import ParallelRunner, SimJob
from repro.analysis.runner import run_cached, run_suite
from repro.common.stats import geomean
from repro.core.configs import SimConfig, UCPConfig
from repro.core.pipeline import SimResult
from repro.workloads.suite import SUITE


@dataclass(frozen=True)
class Scale:
    """How big an experiment run is: which workloads, how many instructions."""

    name: str
    workloads: tuple[str, ...]
    n_instructions: int


#: Benchmark-friendly scale: representative slice of every category.
QUICK = Scale(
    "quick",
    ("srv_02", "srv_04", "int_02", "int_03", "crypto_02", "fp_01"),
    20_000,
)

#: The paper-reproduction workload set at full trace length (the original
#: 16-trace suite; the extended web/db/mix workloads are available for
#: custom experiments via an explicit Scale).
FULL = Scale(
    "full",
    (
        "srv_01", "srv_02", "srv_03", "srv_04", "srv_05", "srv_06", "srv_07",
        "int_01", "int_02", "int_03", "int_04",
        "crypto_01", "crypto_02", "crypto_03",
        "fp_01", "fp_02",
    ),
    40_000,
)

#: Everything, including the extended categories.
EXTENDED = Scale("extended", tuple(SUITE), 40_000)


def baseline_config() -> SimConfig:
    """The paper's Table II baseline."""
    return SimConfig()


def no_uop_config() -> SimConfig:
    return baseline_config().without_uop_cache()


def ideal_config() -> SimConfig:
    return replace(baseline_config(), ideal_uop_cache=True)


def ucp_config(**overrides) -> SimConfig:
    """Baseline plus UCP (default: full UCP with Alt-Ind and UCP-Conf)."""
    return replace(baseline_config(), ucp=UCPConfig(enabled=True, **overrides))


def run(workload: str, config: SimConfig, scale: Scale) -> SimResult:
    return run_cached(workload, config, scale.n_instructions)


def run_all(config: SimConfig, scale: Scale, workloads=None) -> dict[str, SimResult]:
    """Run every workload of ``scale`` under ``config``.

    Routed through the parallel execution engine (``REPRO_SIM_JOBS``
    selects worker count), with results identical to the serial path.
    """
    names = scale.workloads if workloads is None else workloads
    return run_suite(list(names), config, scale.n_instructions)


def run_matrix(
    configs: dict[str, SimConfig], scale: Scale, workloads=None
) -> dict[str, dict[str, SimResult]]:
    """Run a whole ``{label: config}`` × workload grid in one engine batch.

    Submitting the full cross product at once lets the engine overlap
    simulations across configurations, not just across workloads.
    """
    names = list(scale.workloads if workloads is None else workloads)
    jobs = {
        (label, name): SimJob(name, config, scale.n_instructions)
        for label, config in configs.items()
        for name in names
    }
    results = ParallelRunner().run(list(jobs.values()))
    return {
        label: {name: results[jobs[label, name].key] for name in names}
        for label in configs
    }


def select_workloads(scale: Scale, min_ideal_gain: float = 5.0) -> tuple[str, ...]:
    """Paper Section V: keep traces with >= 5% ideal-µ-op-cache headroom."""
    grid = run_matrix(
        {"base": baseline_config(), "ideal": ideal_config()}, scale
    )
    base, ideal = grid["base"], grid["ideal"]
    selected = tuple(
        name
        for name in scale.workloads
        if speedup_pct(ideal[name], base[name]) >= min_ideal_gain
    )
    # Degenerate safety: never select an empty set.
    return selected if selected else scale.workloads


def speedup_pct(fast: SimResult, slow: SimResult) -> float:
    """IPC improvement of ``fast`` over ``slow`` in percent."""
    if slow.ipc == 0:
        return 0.0
    return 100.0 * (fast.ipc / slow.ipc - 1.0)


def geomean_speedup_pct(fast: dict[str, SimResult], slow: dict[str, SimResult]) -> float:
    """Geometric-mean speedup across matching workloads, in percent."""
    ratios = [fast[name].ipc / slow[name].ipc for name in fast if name in slow]
    if not ratios:
        return 0.0
    return 100.0 * (geomean(ratios) - 1.0)
