"""Fig. 15 — sensitivity to the alternate-path stopping threshold.

Paper findings: for µ-op cache prefetching the IPC gain plateaus around a
threshold of ~500 and degrades past ~1000 (µ-op cache thrashing); the
L1I-only variant (UCP-TillL1I) peaks later (~1000) because the L1I is
larger, and reaches 0.6–1.7%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_series
from repro.experiments.common import (
    QUICK,
    Scale,
    baseline_config,
    geomean_speedup_pct,
    run_all,
    ucp_config,
)

THRESHOLDS = (16, 64, 256, 500, 1024, 4096)


@dataclass
class Fig15Result:
    thresholds: tuple[int, ...]
    #: geomean speedup % per threshold: full UCP and UCP-TillL1I.
    ucp: list[float]
    till_l1i: list[float]

    def best_threshold(self, series: str = "ucp") -> int:
        values = self.ucp if series == "ucp" else self.till_l1i
        return self.thresholds[max(range(len(values)), key=values.__getitem__)]


def run(scale: Scale = QUICK, thresholds: tuple[int, ...] = THRESHOLDS) -> Fig15Result:
    base = run_all(baseline_config(), scale)
    ucp_series = []
    l1i_series = []
    for threshold in thresholds:
        ucp_results = run_all(ucp_config(stop_threshold=threshold), scale)
        ucp_series.append(geomean_speedup_pct(ucp_results, base))
        l1i_results = run_all(
            ucp_config(stop_threshold=threshold, till_l1i_only=True), scale
        )
        l1i_series.append(geomean_speedup_pct(l1i_results, base))
    return Fig15Result(tuple(thresholds), ucp_series, l1i_series)


def render(result: Fig15Result) -> str:
    return format_series(
        "Fig. 15: stopping-threshold sensitivity (geomean speedup %)",
        {"UCP u-op prefetch": result.ucp, "UCP L1I prefetch": result.till_l1i},
        x_labels=[str(t) for t in result.thresholds],
    )
