"""Fig. 11 — per-trace UCP speedup alongside conditional-branch MPKI.

Paper findings: average speedup 2%, up to 12%; the workloads benefiting
most have clearly higher conditional MPKI (1.56 average vs 6.17 for the
biggest winner) — a higher MPKI does not guarantee a speedup but
generally entails one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.common.stats import geomean
from repro.experiments.common import (
    QUICK,
    Scale,
    baseline_config,
    run_all,
    speedup_pct,
    ucp_config,
)


@dataclass
class Fig11Result:
    #: (workload, UCP speedup % over baseline, cond MPKI), sorted by speedup.
    rows: list[tuple[str, float, float]]
    geomean_pct: float

    def correlation_positive(self) -> bool:
        """MPKI of the top-speedup half exceeds that of the bottom half."""
        if len(self.rows) < 2:
            return True
        half = len(self.rows) // 2
        low = [mpki for _, _, mpki in self.rows[:half]]
        high = [mpki for _, _, mpki in self.rows[-half:]]
        return sum(high) / len(high) >= sum(low) / len(low)


def run(scale: Scale = QUICK) -> Fig11Result:
    base = run_all(baseline_config(), scale)
    ucp = run_all(ucp_config(), scale)
    rows = sorted(
        (
            (name, speedup_pct(ucp[name], base[name]), base[name].cond_mpki)
            for name in scale.workloads
        ),
        key=lambda item: item[1],
    )
    ratios = [ucp[name].ipc / base[name].ipc for name in scale.workloads]
    return Fig11Result(rows, 100.0 * (geomean(ratios) - 1.0))


def render(result: Fig11Result) -> str:
    table = format_table(
        "Fig. 11: UCP speedup and conditional MPKI (sorted by speedup)",
        ["trace", "speedup %", "cond MPKI"],
        result.rows,
    )
    return f"{table}\ngeomean speedup: {result.geomean_pct:.2f}%"
