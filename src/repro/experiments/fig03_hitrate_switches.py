"""Fig. 3 — µ-op cache hit rate and build/stream switch PKI per trace.

Paper findings: average hit rate 71.6%, minimum ~30.7%, a few traces near
99%; traces below ~95% hit rate suffer significantly more mode switches
(up to ~22 PKI).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.common.stats import amean
from repro.experiments.common import QUICK, Scale, baseline_config, run_all


@dataclass
class Fig03Result:
    #: (workload, hit rate %, switch PKI) sorted by hit rate.
    rows: list[tuple[str, float, float]]

    @property
    def mean_hit_rate(self) -> float:
        return amean([hit for _, hit, _ in self.rows])

    @property
    def mean_switch_pki(self) -> float:
        return amean([pki for _, _, pki in self.rows])


def run(scale: Scale = QUICK) -> Fig03Result:
    base = run_all(baseline_config(), scale)
    rows = sorted(
        (
            (name, base[name].uop_hit_rate, base[name].switch_pki)
            for name in scale.workloads
        ),
        key=lambda item: item[1],
    )
    return Fig03Result(rows)


def render(result: Fig03Result) -> str:
    table = format_table(
        "Fig. 3: u-op cache hit rate and switch PKI (sorted by hit rate)",
        ["trace", "hit rate %", "switch PKI"],
        result.rows,
    )
    return (
        f"{table}\n"
        f"amean hit rate: {result.mean_hit_rate:.1f}%   "
        f"amean switch PKI: {result.mean_switch_pki:.1f}"
    )
