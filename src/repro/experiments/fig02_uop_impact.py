"""Fig. 2 — IPC improvement of a 4Kops µ-op cache over no µ-op cache.

Paper findings: beneficial for ~80.7% of traces, small slowdowns (mode-
switch penalty) for the rest; improvements range roughly -2% to +6%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.common.stats import geomean
from repro.experiments.common import (
    QUICK,
    Scale,
    baseline_config,
    no_uop_config,
    run_all,
    speedup_pct,
)


@dataclass
class Fig02Result:
    #: (workload, speedup %) sorted ascending by speedup, as in the figure.
    speedups: list[tuple[str, float]]
    geomean_pct: float

    @property
    def fraction_benefiting(self) -> float:
        if not self.speedups:
            return 0.0
        positive = sum(1 for _, pct in self.speedups if pct > 0)
        return positive / len(self.speedups)


def run(scale: Scale = QUICK) -> Fig02Result:
    base = run_all(baseline_config(), scale)
    no_uop = run_all(no_uop_config(), scale)
    speedups = sorted(
        ((name, speedup_pct(base[name], no_uop[name])) for name in scale.workloads),
        key=lambda item: item[1],
    )
    ratios = [base[name].ipc / no_uop[name].ipc for name in scale.workloads]
    return Fig02Result(speedups, 100.0 * (geomean(ratios) - 1.0))


def render(result: Fig02Result) -> str:
    table = format_table(
        "Fig. 2: IPC improvement of 4Kops u-op cache vs no u-op cache",
        ["trace", "speedup %"],
        result.speedups,
    )
    return (
        f"{table}\n"
        f"geomean: {result.geomean_pct:.2f}%   "
        f"benefiting: {100 * result.fraction_benefiting:.1f}% of traces"
    )
