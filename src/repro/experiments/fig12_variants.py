"""Fig. 12 — UCP design ablations: indirect predictor and H2P estimator.

Paper findings:

* (a) a dedicated 4KB Alt-Ind indirect predictor lifts the average gain
  from 1.9% (UCP-NoInd) to 2% — without it ~33.7% of correct alternate
  paths are halted early;
* (b) the improved UCP-Conf H2P estimator beats Seznec's TAGE-Conf as the
  trigger (2% vs 1.8% average speedup).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.experiments.common import (
    QUICK,
    Scale,
    baseline_config,
    geomean_speedup_pct,
    run_all,
    ucp_config,
)


@dataclass
class Fig12Result:
    #: variant label -> geomean speedup % over the (non-UCP) baseline.
    speedups: dict[str, float]

    def speedup(self, label: str) -> float:
        return self.speedups[label]


VARIANTS = {
    "UCP": {},
    "UCP-NoInd": {"use_indirect": False},
    "TAGE-Conf": {"confidence": "tage"},
}


def run(scale: Scale = QUICK) -> Fig12Result:
    base = run_all(baseline_config(), scale)
    speedups = {}
    for label, overrides in VARIANTS.items():
        results = run_all(ucp_config(**overrides), scale)
        speedups[label] = geomean_speedup_pct(results, base)
    return Fig12Result(speedups)


def render(result: Fig12Result) -> str:
    rows = [(label, pct) for label, pct in result.speedups.items()]
    return format_table(
        "Fig. 12: UCP ablations (geomean speedup % over baseline)",
        ["variant", "speedup %"],
        rows,
    )
