"""Ablations of the simulator's design points.

These are not paper figures; they probe the design choices the paper
discusses in prose (Sections II and IV-G) and the modelling decisions
DESIGN.md calls out:

* :func:`mode_switch_penalty` — the build↔stream switch penalty that makes
  the µ-op cache a liability for thrashing workloads (Section II/III-A);
* :func:`ftq_depth` — decoupling depth: how far the BPU runs ahead
  determines how much L1I latency FDP hides (Section II);
* :func:`walk_width` — UCP's alternate-path address-generation bandwidth;
* :func:`isa_statefulness` — x86 stateful vs ARM stateless alternate
  decode (Section IV-G-1);
* :func:`l1i_inclusivity` — L1I-inclusive vs non-inclusive µ-op cache
  (Section IV-G-2; the paper argues non-inclusive maximises reach).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.tables import format_table
from repro.experiments.common import (
    QUICK,
    Scale,
    baseline_config,
    geomean_speedup_pct,
    no_uop_config,
    run_all,
    ucp_config,
)


@dataclass
class AblationResult:
    title: str
    #: (variant label, geomean speedup % vs the ablation's reference).
    rows: list[tuple[str, float]]

    def value(self, label: str) -> float:
        for row_label, value in self.rows:
            if row_label == label:
                return value
        raise KeyError(label)

    def render(self) -> str:
        return format_table(self.title, ["variant", "speedup %"], self.rows)


def mode_switch_penalty(scale: Scale = QUICK, penalties=(0, 1, 2, 4)) -> AblationResult:
    """µ-op cache gain vs no-µ-op-cache, per switch penalty."""
    rows = []
    for penalty in penalties:
        config = baseline_config()
        config = replace(
            config, frontend=replace(config.frontend, mode_switch_penalty=penalty)
        )
        reference = run_all(replace(config, uop_cache=None), scale)
        results = run_all(config, scale)
        rows.append((f"penalty={penalty}", geomean_speedup_pct(results, reference)))
    return AblationResult("Ablation: build<->stream switch penalty", rows)


def ftq_depth(scale: Scale = QUICK, depths=(32, 96, 192, 384)) -> AblationResult:
    """IPC vs the 192-entry FTQ baseline, per decoupling depth."""
    reference = run_all(baseline_config(), scale)
    rows = []
    for depth in depths:
        config = baseline_config()
        config = replace(config, frontend=replace(config.frontend, ftq_capacity=depth))
        results = run_all(config, scale)
        rows.append((f"ftq={depth}", geomean_speedup_pct(results, reference)))
    return AblationResult("Ablation: FTQ depth (decoupling run-ahead)", rows)


def walk_width(scale: Scale = QUICK, widths=(2, 8, 16)) -> AblationResult:
    """UCP gain over baseline per alternate-path walk bandwidth."""
    reference = run_all(baseline_config(), scale)
    rows = []
    for width in widths:
        results = run_all(ucp_config(walk_instructions_per_cycle=width), scale)
        rows.append((f"walk={width}/cycle", geomean_speedup_pct(results, reference)))
    return AblationResult("Ablation: UCP alternate-path walk width", rows)


def isa_statefulness(scale: Scale = QUICK) -> AblationResult:
    """UCP gain with stateless (ARM) vs stateful (x86) alternate decode."""
    reference = run_all(baseline_config(), scale)
    rows = []
    for label, stateful in (("stateless (ARMv8)", False), ("stateful (x86)", True)):
        config = replace(ucp_config(), isa_stateful_decode=stateful)
        results = run_all(config, scale)
        rows.append((label, geomean_speedup_pct(results, reference)))
    return AblationResult("Ablation: decode statefulness (Section IV-G-1)", rows)


def btb_organization(scale: Scale = QUICK) -> AblationResult:
    """UCP gain over baseline with instruction vs region BTB organisation.

    With a region BTB, the demand and alternate paths usually share one
    entry per region, so UCP sees far fewer BTB bank conflicts
    (Section IV-C's suggested alternative to doubled banking)."""
    rows = []
    for label, organization in (("instruction BTB", "instruction"), ("region BTB", "region")):
        base = baseline_config()
        base = replace(base, btb=replace(base.btb, organization=organization))
        reference = run_all(base, scale)
        results = run_all(replace(base, ucp=ucp_config().ucp), scale)
        rows.append((label, geomean_speedup_pct(results, reference)))
    return AblationResult("Ablation: BTB organisation under UCP", rows)


def clasp(scale: Scale = QUICK) -> AblationResult:
    """Baseline µ-op hit rate & gain with/without CLASP entry relaxation.

    CLASP (Kotra & Kalamatianos, paper Section VII-E) removes the region-
    boundary termination rule, cutting fragmentation."""
    reference = run_all(no_uop_config(), scale)
    rows = []
    from repro.common.stats import amean

    for label, enabled in (("strict regions (paper)", False), ("CLASP", True)):
        config = baseline_config()
        config = replace(config, uop_cache=replace(config.uop_cache, clasp=enabled))
        results = run_all(config, scale)
        gain = geomean_speedup_pct(results, reference)
        hit = amean([r.uop_hit_rate for r in results.values()])
        rows.append((f"{label} (hit {hit:.1f}%)", gain))
    return AblationResult("Ablation: CLASP entry termination", rows)


def confidence_family(scale: Scale = QUICK) -> AblationResult:
    """UCP triggered by UCP-Conf vs TAGE-Conf vs a hashed perceptron.

    The perceptron flavour is the other storage-free confidence family the
    paper's related work discusses (Akkary et al., Section VII-D)."""
    reference = run_all(baseline_config(), scale)
    rows = []
    for label, source in (
        ("UCP-Conf", "ucp"),
        ("TAGE-Conf", "tage"),
        ("perceptron", "perceptron"),
    ):
        results = run_all(ucp_config(confidence=source), scale)
        rows.append((label, geomean_speedup_pct(results, reference)))
    return AblationResult("Ablation: H2P confidence family", rows)


def l1i_inclusivity(scale: Scale = QUICK) -> AblationResult:
    """µ-op cache gain with and without L1I inclusivity."""
    reference = run_all(no_uop_config(), scale)
    rows = []
    for label, inclusive in (("non-inclusive (paper)", False), ("L1I-inclusive", True)):
        config = baseline_config()
        config = replace(config, uop_cache=replace(config.uop_cache, l1i_inclusive=inclusive))
        results = run_all(config, scale)
        rows.append((label, geomean_speedup_pct(results, reference)))
    return AblationResult("Ablation: L1I inclusivity (Section IV-G-2)", rows)
