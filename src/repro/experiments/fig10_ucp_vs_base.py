"""Fig. 10 — UCP and the baseline relative to no µ-op cache.

Paper findings: with UCP, 90% of the applications benefit from a µ-op
cache (vs 80.7% for the baseline), and the remaining slowdowns shrink
below 0.8%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.experiments.common import (
    QUICK,
    Scale,
    baseline_config,
    no_uop_config,
    run_all,
    speedup_pct,
    ucp_config,
)


@dataclass
class Fig10Result:
    #: (workload, base speedup %, UCP speedup %) vs no µ-op cache, sorted
    #: by the baseline speedup as in the figure.
    rows: list[tuple[str, float, float]]

    def _fraction_positive(self, column: int) -> float:
        if not self.rows:
            return 0.0
        return sum(1 for row in self.rows if row[column] > 0) / len(self.rows)

    @property
    def base_fraction_benefiting(self) -> float:
        return self._fraction_positive(1)

    @property
    def ucp_fraction_benefiting(self) -> float:
        return self._fraction_positive(2)


def run(scale: Scale = QUICK) -> Fig10Result:
    no_uop = run_all(no_uop_config(), scale)
    base = run_all(baseline_config(), scale)
    ucp = run_all(ucp_config(), scale)
    rows = sorted(
        (
            (
                name,
                speedup_pct(base[name], no_uop[name]),
                speedup_pct(ucp[name], no_uop[name]),
            )
            for name in scale.workloads
        ),
        key=lambda item: item[1],
    )
    return Fig10Result(rows)


def render(result: Fig10Result) -> str:
    table = format_table(
        "Fig. 10: IPC vs no u-op cache — baseline and UCP",
        ["trace", "4K-uop %", "UCP %"],
        result.rows,
    )
    return (
        f"{table}\n"
        f"benefiting: baseline {100 * result.base_fraction_benefiting:.0f}%  "
        f"UCP {100 * result.ucp_fraction_benefiting:.0f}%"
    )
