"""Fig. 16 — cost/benefit: IPC improvement per KB of invested storage.

Every frontend technique is plotted as (extra storage KB, geomean speedup
% over the Table II baseline): UCP flavours, standalone L1I prefetchers,
larger µ-op caches, the Misprediction Recovery Cache at several sizes,
and a doubled TAGE-SC-L.

Paper findings: both UCP flavours (8.95KB / 12.95KB) sit on the Pareto
front; D-JOLT needs ~125KB for less gain; MRC yields 0.3–0.7% even at
132KB; doubling the branch predictor barely beats UCP at many times the
cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.tables import format_table
from repro.branch.tage_sc_l import TageScLConfig
from repro.experiments.common import (
    QUICK,
    Scale,
    baseline_config,
    geomean_speedup_pct,
    run_all,
    ucp_config,
)
from repro.prefetch.base import make_prefetcher


@dataclass
class ParetoPoint:
    label: str
    storage_kb: float
    speedup_pct: float


@dataclass
class Fig16Result:
    points: list[ParetoPoint]

    def point(self, label: str) -> ParetoPoint:
        for point in self.points:
            if point.label == label:
                return point
        raise KeyError(label)

    def on_pareto_front(self, label: str) -> bool:
        """True when no other point has <= storage and >= speedup (strictly
        better in at least one dimension)."""
        target = self.point(label)
        for other in self.points:
            if other.label == target.label:
                continue
            if (
                other.storage_kb <= target.storage_kb
                and other.speedup_pct >= target.speedup_pct
                and (
                    other.storage_kb < target.storage_kb
                    or other.speedup_pct > target.speedup_pct
                )
            ):
                return False
        return True


def _double_predictor_config():
    """A 2x TAGE-SC-L baseline (one extra bit of table index)."""
    base = TageScLConfig()
    doubled = replace(base, tage=replace(base.tage, table_size_bits=base.tage.table_size_bits + 1))
    return replace(baseline_config(), branch_predictor=doubled)


def run(scale: Scale = QUICK, full: bool = True) -> Fig16Result:
    base = run_all(baseline_config(), scale)
    points: list[ParetoPoint] = []

    def add(label: str, storage_kb: float, config) -> None:
        results = run_all(config, scale)
        points.append(ParetoPoint(label, storage_kb, geomean_speedup_pct(results, base)))

    # UCP flavours (Section IV-F budgets).
    add("UCP", ucp_config().ucp.storage_kb, ucp_config())
    add("UCP-NoIndirect", ucp_config(use_indirect=False).ucp.storage_kb,
        ucp_config(use_indirect=False))
    if full:
        add("UCP-SharedDecoders", ucp_config(shared_decoders=True).ucp.storage_kb,
            ucp_config(shared_decoders=True))
        add("UCP-L1I(T=1000)", ucp_config(till_l1i_only=True, stop_threshold=1000).ucp.storage_kb,
            ucp_config(till_l1i_only=True, stop_threshold=1000))
        add("UCP-NoBTBConflict", ucp_config(ideal_btb_banking=True).ucp.storage_kb,
            ucp_config(ideal_btb_banking=True))

    # Standalone L1I prefetchers.
    prefetchers = ("fnl_mma", "fnl_mma++", "djolt", "ep", "ep++") if full else ("fnl_mma", "djolt")
    for name in prefetchers:
        storage = make_prefetcher(name).storage_kb
        add(name.upper(), storage, replace(baseline_config(), l1i_prefetcher=name))

    # Larger µ-op caches (extra storage relative to the 4Kops baseline).
    base_kb = baseline_config().uop_cache.storage_kb
    for kops in (8, 16, 32):
        config = baseline_config().with_uop_cache_kops(kops)
        add(f"uop-{kops}Kops", config.uop_cache.storage_kb - base_kb, config)

    # MRC at several sizes (64 entries ~ 16.5KB).
    mrc_sizes = (64, 128, 256, 512) if full else (64, 512)
    for entries in mrc_sizes:
        config = replace(baseline_config(), mrc_entries=entries)
        add(f"MRC-{entries}", entries * 264 / 1024, config)

    # Doubling the conditional branch predictor (~64KB extra).
    add("TAGE-SC-Lx2", 64.0, _double_predictor_config())

    return Fig16Result(points)


def render(result: Fig16Result) -> str:
    rows = [
        (p.label, p.storage_kb, p.speedup_pct,
         "pareto" if result.on_pareto_front(p.label) else "")
        for p in sorted(result.points, key=lambda p: p.storage_kb)
    ]
    return format_table(
        "Fig. 16: storage vs geomean speedup over baseline",
        ["technique", "storage KB", "speedup %", ""],
        rows,
    )
