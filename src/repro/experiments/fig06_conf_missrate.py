"""Fig. 6 — misprediction rate per TAGE-SC-L component per counter value.

Paper findings: saturated HitBank/bimodal counters miss almost never, but
bimodal with a recent miss ("\\>1in8") misses >6% even when saturated;
AltBank predictions miss heavily at *any* counter value; loop-predictor
predictions are reliable (<3%); SC miss rates range 10–50% depending on
|LSUM|.  These observations justify the UCP-Conf classification rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.branch.tage_sc_l import Provider
from repro.common.stats import percent
from repro.experiments.common import QUICK, Scale
from repro.experiments.confidence_study import collect


@dataclass
class Fig06Result:
    #: rows of (provider name, bucket, predictions, miss rate %).
    rows: list[tuple[str, int, int, float]]

    def miss_rate(self, provider: Provider, bucket: int) -> float | None:
        for name, b, _n, rate in self.rows:
            if name == provider.value and b == bucket:
                return rate
        return None

    def provider_rates(self, provider: Provider) -> dict[int, float]:
        return {
            bucket: rate
            for name, bucket, _n, rate in self.rows
            if name == provider.value
        }


def run(scale: Scale = QUICK) -> Fig06Result:
    data = collect(scale.workloads, scale.n_instructions)
    rows = []
    for (provider, bucket), (n, miss) in sorted(
        data["buckets"].items(), key=lambda item: (item[0][0].value, item[0][1])
    ):
        rows.append((provider.value, bucket, n, percent(miss, n)))
    return Fig06Result(rows)


def render(result: Fig06Result) -> str:
    return format_table(
        "Fig. 6: misprediction rate per component per confidence value",
        ["component", "value", "predictions", "miss rate %"],
        result.rows,
    )
