"""Experiment drivers — one module per paper table/figure.

Every module exposes ``run(scale)`` returning a result object with the
numbers behind the corresponding paper figure, and ``render(result)``
producing the text table/series.  ``scale`` (see
:mod:`repro.experiments.common`) selects workloads and trace length;
benchmarks default to ``QUICK``, the full reproduction uses ``FULL``.

Index (see DESIGN.md for the complete mapping):

===========  ===========================================================
fig02        IPC impact of the 4Kops µ-op cache vs no µ-op cache
fig03        µ-op cache hit rate and build/stream switch PKI
fig04        µ-op cache size sweep (4K–64Kops) vs ideal
fig05        L1I prefetchers vs alternate-path idealisations
fig06        TAGE-SC-L per-component, per-confidence miss rates
fig07        Misprediction contribution per predictor component
fig09        H2P coverage/accuracy: TAGE-Conf vs UCP-Conf
fig10        UCP and baseline IPC relative to no µ-op cache
fig11        Per-trace UCP speedup vs conditional MPKI
fig12        UCP variants: indirect predictor and confidence estimator
fig13        µ-op cache hit rate under UCP
fig14        UCP prefetch accuracy
fig15        Stopping-threshold sensitivity (µ-op cache vs L1I-only)
fig16        Storage-vs-speedup Pareto of UCP and all baselines
taba         Artifact variant table (UCP / TillL1I / Shared / IdealBTB)
===========  ===========================================================
"""

from repro.experiments.common import FULL, QUICK, Scale, baseline_config

__all__ = ["Scale", "QUICK", "FULL", "baseline_config"]
