"""Fig. 14 — UCP prefetch accuracy.

Paper findings: on average 67.7% of prefetches are timely with respect to
the triggering H2P instance (at µ-op entry granularity); in addition ~8%
of entries prefetched on an ultimately-incorrect alternate path are still
used later.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.common.stats import amean, percent
from repro.experiments.common import QUICK, Scale, run_all, ucp_config


@dataclass
class Fig14Result:
    #: (workload, prefetch accuracy %, entries prefetched), sorted by acc.
    rows: list[tuple[str, float, int]]
    #: % of prefetched entries later used at least once.
    used_rate: float

    @property
    def mean_accuracy(self) -> float:
        weighted = [(acc, n) for _, acc, n in self.rows if n > 0]
        if not weighted:
            return 0.0
        return amean([acc for acc, _ in weighted])


def run(scale: Scale = QUICK) -> Fig14Result:
    ucp = run_all(ucp_config(), scale)
    rows = sorted(
        (
            (
                name,
                ucp[name].prefetch_accuracy,
                ucp[name].window.get("ucp_entries_prefetched", 0),
            )
            for name in scale.workloads
        ),
        key=lambda item: item[1],
    )
    total_prefetched = sum(
        r.window.get("ucp_entries_prefetched", 0) for r in ucp.values()
    )
    total_used = sum(
        r.window.get("prefetched_entries_used", 0) for r in ucp.values()
    )
    return Fig14Result(rows, percent(total_used, total_prefetched))


def render(result: Fig14Result) -> str:
    table = format_table(
        "Fig. 14: UCP prefetch accuracy (timely / issued)",
        ["trace", "accuracy %", "entries"],
        result.rows,
    )
    return (
        f"{table}\namean accuracy: {result.mean_accuracy:.1f}%   "
        f"prefetched entries used at least once: {result.used_rate:.1f}%"
    )
