"""Fig. 9 — coverage and accuracy of the H2P classifiers.

Paper findings: extending TAGE-Conf with per-bank classification and SC/LP
support (UCP-Conf) improves coverage from 48.5% to 70% and accuracy from
12% to 14.66%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.common.stats import percent
from repro.experiments.common import QUICK, Scale, baseline_config, run_all


@dataclass
class Fig09Result:
    #: estimator -> (coverage %, accuracy %).
    metrics: dict[str, tuple[float, float]]

    def coverage(self, estimator: str) -> float:
        return self.metrics[estimator][0]

    def accuracy(self, estimator: str) -> float:
        return self.metrics[estimator][1]


def run(scale: Scale = QUICK) -> Fig09Result:
    results = run_all(baseline_config(), scale)
    metrics = {}
    for estimator in ("tage", "ucp"):
        flagged = mispredictions = flagged_misses = 0
        for result in results.values():
            stats = result.confidence[estimator].stats
            flagged += stats["flagged"]
            mispredictions += stats["mispredictions"]
            flagged_misses += stats["flagged_mispredictions"]
        metrics[estimator] = (
            percent(flagged_misses, mispredictions),
            percent(flagged_misses, flagged),
        )
    return Fig09Result(metrics)


def render(result: Fig09Result) -> str:
    rows = [
        ("TAGE-Conf", *result.metrics["tage"]),
        ("UCP-Conf", *result.metrics["ucp"]),
    ]
    return format_table(
        "Fig. 9: H2P classifier coverage and accuracy",
        ["estimator", "coverage %", "accuracy %"],
        rows,
    )
