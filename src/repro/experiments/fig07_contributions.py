"""Fig. 7 — contribution of each TAGE-SC-L component to mispredictions.

Paper findings: HitBank provides ~66.7% of all mispredictions, AltBank
8.1%, bimodal 6.2% (+7.5% with a recent bimodal miss), SC 11.1%, and the
loop predictor a negligible 0.1%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.branch.tage_sc_l import Provider
from repro.common.stats import percent
from repro.experiments.common import QUICK, Scale
from repro.experiments.confidence_study import collect


@dataclass
class Fig07Result:
    #: provider name -> (mispredictions, share % of all mispredictions).
    shares: dict[str, tuple[int, float]]

    def share(self, provider: Provider) -> float:
        return self.shares.get(provider.value, (0, 0.0))[1]


def run(scale: Scale = QUICK) -> Fig07Result:
    data = collect(scale.workloads, scale.n_instructions)
    total_misses = sum(miss for _n, miss in data["providers"].values())
    shares = {
        provider.value: (miss, percent(miss, total_misses))
        for provider, (_n, miss) in sorted(
            data["providers"].items(), key=lambda item: -item[1][1]
        )
    }
    return Fig07Result(shares)


def render(result: Fig07Result) -> str:
    rows = [
        (name, misses, share) for name, (misses, share) in result.shares.items()
    ]
    return format_table(
        "Fig. 7: misprediction contribution per component",
        ["component", "mispredictions", "share %"],
        rows,
    )
