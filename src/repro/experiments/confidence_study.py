"""Shared collector for Fig. 6/7: per-component prediction outcomes.

Runs the baseline TAGE-SC-L over the workload traces (predictor-only, no
pipeline timing — these figures are about the predictor) and tallies, for
every prediction, the providing component, its raw confidence value, and
whether it mispredicted.
"""

from __future__ import annotations

from collections import defaultdict
from functools import lru_cache

from repro.branch.tage_sc_l import Provider, TageScL
from repro.isa.instruction import BranchClass
from repro.workloads.suite import load_workload


@lru_cache(maxsize=8)
def collect(workloads: tuple[str, ...], n_instructions: int) -> dict:
    """Tally (provider, value-bucket) -> [predictions, mispredictions].

    Returns ``{"buckets": {(provider, bucket): (n, miss)},
    "providers": {provider: (n, miss)}}`` accumulated over all workloads,
    skipping each trace's first half (warm-up).
    """
    buckets: dict[tuple[Provider, int], list[int]] = defaultdict(lambda: [0, 0])
    providers: dict[Provider, list[int]] = defaultdict(lambda: [0, 0])
    for name in workloads:
        trace = load_workload(name, n_instructions).trace
        predictor = TageScL()
        warm = len(trace) // 2
        for i in range(len(trace)):
            branch_class = trace.branch_classes[i]
            if branch_class == BranchClass.COND_DIRECT:
                pc = int(trace.pcs[i])
                taken = bool(trace.takens[i])
                prediction = predictor.predict(pc)
                if i >= warm:
                    miss = prediction.taken != taken
                    bucket = _bucket(prediction)
                    entry = buckets[(prediction.provider, bucket)]
                    entry[0] += 1
                    entry[1] += miss
                    totals = providers[prediction.provider]
                    totals[0] += 1
                    totals[1] += miss
                predictor.update(prediction, taken)
            elif branch_class != BranchClass.NOT_BRANCH:
                predictor.push_unconditional(int(trace.pcs[i]))
    return {
        "buckets": {key: tuple(value) for key, value in buckets.items()},
        "providers": {key: tuple(value) for key, value in providers.items()},
    }


def _bucket(prediction) -> int:
    """Confidence bucket: raw counter for TAGE components, |LSUM| band for
    SC (0: 0-31, 1: 32-63, 2: 64-127, 3: >=128), confidence for the loop
    predictor."""
    provider = prediction.provider
    if provider is Provider.SC:
        magnitude = abs(prediction.sc.lsum)
        if magnitude >= 128:
            return 3
        if magnitude >= 64:
            return 2
        if magnitude >= 32:
            return 1
        return 0
    if provider is Provider.LOOP:
        return prediction.loop.confidence
    if provider in (Provider.BIMODAL, Provider.BIMODAL_1IN8):
        return prediction.tage.bimodal_ctr
    if provider is Provider.ALTBANK:
        return prediction.tage.alt_ctr
    return prediction.tage.hit_ctr
