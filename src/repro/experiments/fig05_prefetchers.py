"""Fig. 5 — state-of-the-art L1I prefetchers versus alternate-path ideals.

For each L1I prefetcher (none, FNL-MMA, FNL-MMA++, D-JOLT, EP, EP++), four
configurations are compared against the no-prefetcher baseline:

* **Base** — the prefetcher targets the L1I only;
* **L1I-Hits** — every L1I-resident line also counts as a µ-op cache hit
  (ideally forwarding all decoupled-fetch lines into the µ-op cache);
* **IdealBRCond-8 / -16** — all instructions after a conditional
  misprediction are µ-op hits until 8 (resp. 16) conditionals pass.

Paper findings: standalone prefetchers gain 1.1–1.6%; L1I-Hits pushes the
hit rate to as much as 97% but the IPC gain only to ~1.9%; IdealBRCond-8
beats it (2.3%, 2.9% for -16) despite a far smaller hit-rate increase —
refill-criticality beats raw hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.tables import format_table
from repro.common.stats import amean
from repro.experiments.common import (
    QUICK,
    Scale,
    baseline_config,
    geomean_speedup_pct,
    run_all,
)

PREFETCHERS = (None, "fnl_mma", "fnl_mma++", "djolt", "ep", "ep++")
CONFIG_KINDS = ("base", "l1i_hits", "ideal8", "ideal16")


def _variant(prefetcher: str | None, kind: str):
    config = replace(baseline_config(), l1i_prefetcher=prefetcher)
    if kind == "l1i_hits":
        config = replace(config, l1i_hits_are_uop_hits=True)
    elif kind == "ideal8":
        config = replace(config, ideal_brcond_window=8)
    elif kind == "ideal16":
        config = replace(config, ideal_brcond_window=16)
    return config


@dataclass
class Fig05Result:
    #: speedups[prefetcher_label][kind] = geomean % vs no-prefetcher base.
    speedups: dict[str, dict[str, float]]
    #: hit_rates[prefetcher_label][kind] = amean µ-op cache hit rate %.
    hit_rates: dict[str, dict[str, float]]


def run(scale: Scale = QUICK, prefetchers=PREFETCHERS, kinds=CONFIG_KINDS) -> Fig05Result:
    reference = run_all(_variant(None, "base"), scale)
    speedups: dict[str, dict[str, float]] = {}
    hit_rates: dict[str, dict[str, float]] = {}
    for prefetcher in prefetchers:
        label = prefetcher or "none"
        speedups[label] = {}
        hit_rates[label] = {}
        for kind in kinds:
            results = run_all(_variant(prefetcher, kind), scale)
            speedups[label][kind] = geomean_speedup_pct(results, reference)
            hit_rates[label][kind] = amean(
                [results[name].uop_hit_rate for name in scale.workloads]
            )
    return Fig05Result(speedups, hit_rates)


def render(result: Fig05Result) -> str:
    kinds = list(next(iter(result.speedups.values())))
    speed_rows = [
        [label] + [result.speedups[label][kind] for kind in kinds]
        for label in result.speedups
    ]
    hit_rows = [
        [label] + [result.hit_rates[label][kind] for kind in kinds]
        for label in result.hit_rates
    ]
    return "\n\n".join(
        [
            format_table(
                "Fig. 5a: speedup % vs no-prefetcher baseline",
                ["prefetcher"] + kinds,
                speed_rows,
            ),
            format_table(
                "Fig. 5b: u-op cache hit rate % (amean)",
                ["prefetcher"] + kinds,
                hit_rows,
            ),
        ]
    )
