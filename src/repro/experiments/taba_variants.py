"""Artifact appendix table — IPC improvement of the UCP variants.

Paper artifact values (threshold 500):

====================  =================
Variant               IPC improvement %
====================  =================
UCP                   2.0
UCP-TillL1I           1.6
UCP-SharedDecoders    1.8
UCP-IdealBTBBanking   2.2
====================  =================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.experiments.common import (
    QUICK,
    Scale,
    baseline_config,
    geomean_speedup_pct,
    run_all,
    ucp_config,
)

VARIANTS = {
    "UCP": {},
    "UCP-TillL1I": {"till_l1i_only": True},
    "UCP-SharedDecoders": {"shared_decoders": True},
    "UCP-IdealBTBBanking": {"ideal_btb_banking": True},
}


@dataclass
class TabAResult:
    speedups: dict[str, float]

    def speedup(self, label: str) -> float:
        return self.speedups[label]


def run(scale: Scale = QUICK) -> TabAResult:
    base = run_all(baseline_config(), scale)
    speedups = {}
    for label, overrides in VARIANTS.items():
        results = run_all(ucp_config(**overrides), scale)
        speedups[label] = geomean_speedup_pct(results, base)
    return TabAResult(speedups)


def render(result: TabAResult) -> str:
    rows = [(label, pct) for label, pct in result.speedups.items()]
    return format_table(
        "Artifact table: UCP variant IPC improvement (geomean %)",
        ["variant", "speedup %"],
        rows,
    )
