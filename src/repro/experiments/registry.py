"""Registry mapping experiment names to their driver modules."""

from __future__ import annotations

from repro.experiments import (
    fig02_uop_impact,
    fig03_hitrate_switches,
    fig04_size_sweep,
    fig05_prefetchers,
    fig06_conf_missrate,
    fig07_contributions,
    fig09_h2p,
    fig10_ucp_vs_base,
    fig11_speedup_mpki,
    fig12_variants,
    fig13_ucp_hitrate,
    fig14_prefetch_accuracy,
    fig15_threshold,
    fig16_pareto,
    taba_variants,
)

#: Every paper table/figure driver, keyed by the id used in DESIGN.md.
EXPERIMENTS = {
    "fig02": fig02_uop_impact,
    "fig03": fig03_hitrate_switches,
    "fig04": fig04_size_sweep,
    "fig05": fig05_prefetchers,
    "fig06": fig06_conf_missrate,
    "fig07": fig07_contributions,
    "fig09": fig09_h2p,
    "fig10": fig10_ucp_vs_base,
    "fig11": fig11_speedup_mpki,
    "fig12": fig12_variants,
    "fig13": fig13_ucp_hitrate,
    "fig14": fig14_prefetch_accuracy,
    "fig15": fig15_threshold,
    "fig16": fig16_pareto,
    "taba": taba_variants,
}
