"""Registry mapping experiment names to their driver modules.

:func:`run_experiment` is the canonical entry point used by the CLI and
scripting callers; it routes every driver's simulations through the
parallel execution engine (see :mod:`repro.analysis.parallel`) simply by
virtue of the drivers calling :func:`repro.experiments.common.run_all`.
"""

from __future__ import annotations

from repro.experiments import (
    fig02_uop_impact,
    fig03_hitrate_switches,
    fig04_size_sweep,
    fig05_prefetchers,
    fig06_conf_missrate,
    fig07_contributions,
    fig09_h2p,
    fig10_ucp_vs_base,
    fig11_speedup_mpki,
    fig12_variants,
    fig13_ucp_hitrate,
    fig14_prefetch_accuracy,
    fig15_threshold,
    fig16_pareto,
    taba_variants,
)

#: Every paper table/figure driver, keyed by the id used in DESIGN.md.
EXPERIMENTS = {
    "fig02": fig02_uop_impact,
    "fig03": fig03_hitrate_switches,
    "fig04": fig04_size_sweep,
    "fig05": fig05_prefetchers,
    "fig06": fig06_conf_missrate,
    "fig07": fig07_contributions,
    "fig09": fig09_h2p,
    "fig10": fig10_ucp_vs_base,
    "fig11": fig11_speedup_mpki,
    "fig12": fig12_variants,
    "fig13": fig13_ucp_hitrate,
    "fig14": fig14_prefetch_accuracy,
    "fig15": fig15_threshold,
    "fig16": fig16_pareto,
    "taba": taba_variants,
}


def run_experiment(name: str, scale=None, *, jobs: int | None = None):
    """Run one registered experiment and return ``(result, rendered_text)``.

    ``scale`` defaults to QUICK; ``jobs`` (when given) pins the parallel
    engine's worker count for the duration of the run via
    ``REPRO_SIM_JOBS``, so every ``run_all`` inside the driver inherits it.
    """
    import os

    from repro.experiments.common import QUICK

    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    module = EXPERIMENTS[name]
    previous = os.environ.get("REPRO_SIM_JOBS")
    if jobs is not None:
        os.environ["REPRO_SIM_JOBS"] = str(jobs)
    try:
        result = module.run(QUICK if scale is None else scale)
    finally:
        if jobs is not None:
            if previous is None:
                os.environ.pop("REPRO_SIM_JOBS", None)
            else:
                os.environ["REPRO_SIM_JOBS"] = previous
    return result, module.render(result)
