"""Fig. 13 — µ-op cache hit rate under UCP.

Paper findings: the hit rate rises only a little (71.4% → 74%): UCP
prefetches few but *critical* entries (about ten cache lines per
alternate path), so the benefit shows in IPC, not in bulk hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.common.stats import amean
from repro.experiments.common import QUICK, Scale, baseline_config, run_all, ucp_config


@dataclass
class Fig13Result:
    #: (workload, baseline hit %, UCP hit %), sorted by UCP hit rate.
    rows: list[tuple[str, float, float]]

    @property
    def mean_base_hit(self) -> float:
        return amean([row[1] for row in self.rows])

    @property
    def mean_ucp_hit(self) -> float:
        return amean([row[2] for row in self.rows])


def run(scale: Scale = QUICK) -> Fig13Result:
    base = run_all(baseline_config(), scale)
    ucp = run_all(ucp_config(), scale)
    rows = sorted(
        (
            (name, base[name].uop_hit_rate, ucp[name].uop_hit_rate)
            for name in scale.workloads
        ),
        key=lambda item: item[2],
    )
    return Fig13Result(rows)


def render(result: Fig13Result) -> str:
    table = format_table(
        "Fig. 13: u-op cache hit rate, baseline vs UCP",
        ["trace", "baseline %", "UCP %"],
        result.rows,
    )
    return (
        f"{table}\namean: baseline {result.mean_base_hit:.1f}%  "
        f"UCP {result.mean_ucp_hit:.1f}%"
    )
