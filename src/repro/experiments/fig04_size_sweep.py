"""Fig. 4 — scaling the µ-op cache from 4Kops to 64Kops, vs ideal.

Paper findings: hit rate climbs (71.6% → 91.2% at 64Kops) but IPC gains
stay small (≤ ~1.2% over the 4Kops baseline), far below the ideal µ-op
cache (average 10.8%, up to 36%): capacity alone cannot buy the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.common.stats import amean
from repro.experiments.common import (
    QUICK,
    Scale,
    baseline_config,
    ideal_config,
    no_uop_config,
    run_all,
    geomean_speedup_pct,
)

SIZES_KOPS = (4, 8, 16, 32, 64)


@dataclass
class Fig04Result:
    #: (size label, geomean speedup % vs no-µ-op-cache, amean hit rate %).
    rows: list[tuple[str, float, float]]
    ideal_speedup_pct: float

    def speedup_of(self, label: str) -> float:
        for row_label, speedup, _ in self.rows:
            if row_label == label:
                return speedup
        raise KeyError(label)

    def hit_rate_of(self, label: str) -> float:
        for row_label, _, hit in self.rows:
            if row_label == label:
                return hit
        raise KeyError(label)


def run(scale: Scale = QUICK) -> Fig04Result:
    no_uop = run_all(no_uop_config(), scale)
    rows = []
    for kops in SIZES_KOPS:
        config = baseline_config().with_uop_cache_kops(kops)
        results = run_all(config, scale)
        rows.append(
            (
                f"{kops}Kops",
                geomean_speedup_pct(results, no_uop),
                amean([results[name].uop_hit_rate for name in scale.workloads]),
            )
        )
    ideal = run_all(ideal_config(), scale)
    return Fig04Result(rows, geomean_speedup_pct(ideal, no_uop))


def render(result: Fig04Result) -> str:
    table = format_table(
        "Fig. 4: u-op cache size sweep (speedup vs no u-op cache)",
        ["size", "speedup %", "hit rate %"],
        result.rows,
    )
    return f"{table}\nideal u-op cache: {result.ideal_speedup_pct:.2f}%"
