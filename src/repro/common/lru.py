"""True-LRU replacement state for one cache set.

Kept intentionally simple: an ordered list of way indices, most recently
used last.  Caches in this repo are small enough (<= 64 ways) that the
O(ways) list operations are irrelevant next to the rest of the simulation.
"""

from __future__ import annotations


class LRUSet:
    """Tracks recency among ``ways`` ways of a single cache set."""

    __slots__ = ("ways", "_order")

    def __init__(self, ways: int) -> None:
        if ways < 1:
            raise ValueError("a set needs at least one way")
        self.ways = ways
        # Invalid/never-touched ways start at the LRU end in way order.
        self._order: list[int] = list(range(ways))

    def touch(self, way: int) -> None:
        """Mark ``way`` most recently used."""
        self._check(way)
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        """Return the least recently used way (does not touch it)."""
        return self._order[0]

    def demote(self, way: int) -> None:
        """Force ``way`` to LRU position (used on invalidation)."""
        self._check(way)
        self._order.remove(way)
        self._order.insert(0, way)

    def recency(self, way: int) -> int:
        """0 == LRU, ways-1 == MRU."""
        self._check(way)
        return self._order.index(way)

    def _check(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise IndexError(f"way {way} out of range for {self.ways}-way set")

    def __repr__(self) -> str:
        return f"LRUSet(ways={self.ways}, lru_to_mru={self._order})"
