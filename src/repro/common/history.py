"""Global branch history and folded-history (circular shift register) views.

TAGE-family predictors index and tag their tables with hashes of very long
global history vectors (up to several hundred bits).  Real hardware keeps
*folded* copies of the history — circular shift registers (CSRs) that
maintain ``history % (2**width - 1)``-style compressions incrementally, one
XOR per inserted bit.  We model both: a :class:`GlobalHistory` bit vector of
bounded length, and :class:`FoldedHistory` views registered on it that stay
consistent as bits are inserted.

The alternate-path predictors of UCP (paper Section IV-C) need *two*
speculative histories that can be resynchronised by copying; both classes
therefore support cheap snapshot/restore.
"""

from __future__ import annotations


class FoldedHistory:
    """Incrementally folded view of the most recent ``length`` history bits.

    Folds ``length`` bits down to ``width`` bits by XOR-ing ``width``-bit
    chunks, maintained in O(1) per inserted bit exactly like a hardware CSR.
    """

    __slots__ = ("length", "width", "value", "_out_point", "_mask")

    def __init__(self, length: int, width: int) -> None:
        if length < 1 or width < 1:
            raise ValueError("length and width must be positive")
        self.length = length
        self.width = width
        self.value = 0
        # Position inside the folded register where the outgoing (oldest)
        # bit lands after `length` rotations.
        self._out_point = length % width
        self._mask = (1 << width) - 1

    def update(self, new_bit: int, out_bit: int) -> None:
        """Insert ``new_bit`` and retire ``out_bit`` (the bit aged out).

        All folded bits rotate one position left (each raw bit ages by one
        index), the new bit lands at position 0, and the outgoing bit —
        which the rotation carried to position ``length % width`` — is
        cancelled by XOR.
        """
        mask = self._mask
        rotated = ((self.value << 1) & mask) | (self.value >> (self.width - 1))
        rotated ^= new_bit & 1
        rotated ^= (out_bit & 1) << self._out_point
        self.value = rotated & mask

    def recompute(self, bits: list[int]) -> None:
        """Rebuild the folded value from the raw ``bits`` (newest first)."""
        folded = 0
        for position, bit in enumerate(bits[: self.length]):
            if bit:
                folded ^= 1 << (position % self.width)
        self.value = folded

    def __repr__(self) -> str:
        return f"FoldedHistory(length={self.length}, width={self.width}, value={self.value:#x})"


class GlobalHistory:
    """A bounded global branch-history register with folded views.

    Newest bit is bit 0.  Folded views registered through :meth:`add_folded`
    are kept consistent on every :meth:`push`.  ``snapshot``/``restore``
    support the checkpointing that alternate-path prediction requires.
    """

    __slots__ = ("capacity", "_bits", "_folds", "_fold_params", "_capacity_mask")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._bits = 0  # newest bit is LSB
        self._folds: list[FoldedHistory] = []
        # Per-fold constants (fold, mask, width-1, length-1, out_point)
        # hoisted so push() — the hottest predictor-stack function — runs
        # the CSR rotation inline instead of through a method call per fold.
        self._fold_params: list[tuple[FoldedHistory, int, int, int, int]] = []
        self._capacity_mask = (1 << capacity) - 1

    def add_folded(self, length: int, width: int) -> FoldedHistory:
        """Register and return a folded view over the newest ``length`` bits."""
        if length > self.capacity:
            raise ValueError(f"fold length {length} exceeds capacity {self.capacity}")
        fold = FoldedHistory(length, width)
        self._folds.append(fold)
        self._fold_params.append(
            (fold, fold._mask, width - 1, length - 1, fold._out_point)
        )
        return fold

    def push(self, taken: bool) -> None:
        """Insert one direction bit (speculatively or at update time)."""
        bits = self._bits
        new_bit = 1 if taken else 0
        # Inlined FoldedHistory.update for every registered view.  No final
        # mask is needed: the rotation is masked, and both XOR terms land
        # strictly below bit `width` (out_point = length % width).
        for fold, mask, width_m1, out_shift, out_point in self._fold_params:
            value = fold.value
            fold.value = (
                (((value << 1) & mask) | (value >> width_m1))
                ^ new_bit
                ^ (((bits >> out_shift) & 1) << out_point)
            )
        self._bits = ((bits << 1) | new_bit) & self._capacity_mask

    def bit(self, index: int) -> int:
        """Return history bit ``index`` (0 == newest)."""
        if not 0 <= index < self.capacity:
            raise IndexError(f"history index {index} out of range")
        return (self._bits >> index) & 1

    def value(self, length: int) -> int:
        """Return the newest ``length`` bits as an integer."""
        if length > self.capacity:
            raise ValueError(f"requested {length} bits from {self.capacity}-bit history")
        return self._bits & ((1 << length) - 1)

    def snapshot(self) -> tuple[int, tuple[int, ...]]:
        """Capture raw bits and all folded values for later :meth:`restore`."""
        return self._bits, tuple(fold.value for fold in self._folds)

    def restore(self, state: tuple[int, tuple[int, ...]]) -> None:
        bits, fold_values = state
        if len(fold_values) != len(self._folds):
            raise ValueError("snapshot does not match registered folds")
        self._bits = bits
        for fold, value in zip(self._folds, fold_values):
            fold.value = value

    def copy_from(self, other: "GlobalHistory") -> None:
        """Adopt another history's contents (used to resync the alt-path GHR).

        Both histories must have identical capacity and fold geometry.
        """
        if other.capacity != self.capacity:
            raise ValueError("history capacities differ")
        if len(other._folds) != len(self._folds):
            raise ValueError("fold geometry differs")
        self._bits = other._bits
        for mine, theirs in zip(self._folds, other._folds):
            if (mine.length, mine.width) != (theirs.length, theirs.width):
                raise ValueError("fold geometry differs")
            mine.value = theirs.value

    def __repr__(self) -> str:
        return f"GlobalHistory(capacity={self.capacity}, folds={len(self._folds)})"


class PathHistory:
    """A short path-history register mixing in low PC bits per branch.

    Used by TAGE/ITTAGE index hashes to disambiguate identical direction
    histories reached through different code paths.
    """

    __slots__ = ("bits", "value", "_mask")

    def __init__(self, bits: int = 32) -> None:
        self.bits = bits
        self.value = 0
        self._mask = (1 << bits) - 1

    def push(self, pc: int) -> None:
        # PCs are 4-byte aligned, so mix from bit 2 upward.
        mixed = ((pc >> 2) ^ (pc >> 5)) & 1
        self.value = ((self.value << 1) ^ mixed) & self._mask

    def snapshot(self) -> int:
        return self.value

    def restore(self, state: int) -> None:
        self.value = state
