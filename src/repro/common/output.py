"""Shared output-path resolution for artifact-writing commands.

Every command that writes a file a human asked for by bare name
(``repro profile --json``, ``repro trace``, ``repro metrics --json``)
routes the name through :func:`resolve_output_path`, so one environment
variable — ``REPRO_BENCH_OUT``, the same one the benchmark harness uses —
redirects all of them into a collected artifact directory (CI uploads
that directory wholesale).

The rules are deliberately small:

* a bare filename (no directory component) lands in ``$REPRO_BENCH_OUT``
  when the variable is set (the directory is created), else in the CWD;
* anything with a directory component — absolute or relative — is taken
  literally: an explicit path is an explicit instruction.
"""

from __future__ import annotations

import os
from pathlib import Path

#: Environment variable naming the shared artifact directory.
OUT_ENV = "REPRO_BENCH_OUT"


def resolve_output_path(name: str | os.PathLike[str]) -> Path:
    """Resolve where an output artifact named ``name`` should be written."""
    path = Path(name)
    if path.name != str(name):
        # Caller gave a directory component (or an absolute path): honour it.
        return path
    out = os.environ.get(OUT_ENV, "")
    if not out:
        return path
    directory = Path(out)
    directory.mkdir(parents=True, exist_ok=True)
    return directory / path
