"""Statistics plumbing shared by the simulator and the experiment drivers.

The paper reports geometric means for speedups and arithmetic means for
other metrics (Section V); :func:`geomean` and :func:`amean` mirror that.
:class:`StatBlock` is a tiny named-counter container every pipeline
component uses so that experiments can introspect any counter by name.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass


def amean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty input."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; 0.0 for an empty input."""
    values = list(values)
    if not values:
        return 0.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geomean requires positive values, got {value}")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def geomean_speedup(ratios: Iterable[float]) -> float:
    """Geometric-mean speedup expressed in percent (paper convention)."""
    return (geomean(ratios) - 1.0) * 100.0


def percent(numerator: float, denominator: float) -> float:
    """Safe percentage; 0.0 when the denominator is zero."""
    if denominator == 0:
        return 0.0
    return 100.0 * numerator / denominator


def per_kilo(numerator: float, denominator: float) -> float:
    """Events per kilo-unit (e.g. switches or mispredictions PKI)."""
    if denominator == 0:
        return 0.0
    return 1000.0 * numerator / denominator


def quantile(values: Iterable[float], q: float) -> float:
    """Linear-interpolated quantile ``q`` in [0, 1]; 0.0 for empty input."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile requires 0 <= q <= 1, got {q}")
    position = q * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    fraction = position - low
    value = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
    # Clamp: float rounding must not push the result past the bracket.
    return min(max(value, ordered[low]), ordered[high])


@dataclass(frozen=True)
class TimingSummary:
    """Distribution summary of a batch of wall-clock samples (seconds).

    Used by the parallel experiment engine for per-job timing and
    throughput reporting; all fields are 0.0 for an empty batch.
    """

    count: int
    total: float
    mean: float
    p50: float
    p95: float
    max: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "TimingSummary":
        values = list(samples)
        if not values:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=len(values),
            total=sum(values),
            mean=amean(values),
            p50=quantile(values, 0.50),
            p95=quantile(values, 0.95),
            max=max(values),
        )


class StatBlock:
    """A named bag of integer counters with hierarchical names.

    Components bump counters via :meth:`add`; experiment drivers read them
    back via indexing.  Unknown counters read as zero, which keeps callers
    free of existence checks when a feature (e.g. UCP) is disabled.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._counters: dict[str, int] = defaultdict(int)

    def add(self, key: str, amount: int = 1) -> None:
        self._counters[key] += amount

    def set(self, key: str, value: int) -> None:
        self._counters[key] = value

    def __getitem__(self, key: str) -> int:
        return self._counters.get(key, 0)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def keys(self) -> list[str]:
        return sorted(self._counters)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counters)

    #: Schema version of the :meth:`to_dict` export.
    SCHEMA = 1

    def to_dict(self) -> dict[str, object]:
        """Stable schema export: ``{"schema", "name", "counters"}``.

        This is the one serialization format for counters — the result
        cache envelope, the interval-metrics emitter and the CLI JSON
        dumps all go through it, so on-disk artifacts stay comparable
        across versions (the schema number gates future shape changes).
        """
        return {
            "schema": self.SCHEMA,
            "name": self.name,
            "counters": dict(self._counters),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "StatBlock":
        """Rebuild a block from a :meth:`to_dict` export; validates shape."""
        if not isinstance(data, dict) or data.get("schema") != cls.SCHEMA:
            raise ValueError(f"not a StatBlock export (schema {cls.SCHEMA}): {data!r}")
        name = data.get("name", "")
        block = cls(name if isinstance(name, str) else str(name))
        counters = data.get("counters")
        if not isinstance(counters, dict):
            raise ValueError("StatBlock export missing 'counters' mapping")
        for key, value in counters.items():
            block._counters[key] = value
        return block

    def merge(self, other: "StatBlock", prefix: str = "") -> None:
        """Fold another block's counters into this one."""
        for key, value in other._counters.items():
            self._counters[prefix + key] += value

    def __repr__(self) -> str:
        return f"StatBlock({self.name!r}, {len(self._counters)} counters)"
