"""Saturating counters, the workhorse state element of branch predictors.

Two flavours are provided:

* :class:`SaturatingCounter` — an unsigned counter in ``[0, 2**bits - 1]``.
* :class:`SignedSaturatingCounter` — a two's-complement-style counter in
  ``[-(2**(bits-1)), 2**(bits-1) - 1]``, matching the convention used by
  TAGE/ITTAGE prediction counters in the paper (e.g. a 3-bit counter spans
  -4..3 and "saturated" means -4/3, "weak" means -1/0).
"""

from __future__ import annotations


class SaturatingCounter:
    """An unsigned saturating counter with ``bits`` bits of state."""

    __slots__ = ("bits", "max_value", "value")

    def __init__(self, bits: int, value: int = 0) -> None:
        if bits < 1:
            raise ValueError(f"counter needs at least 1 bit, got {bits}")
        self.bits = bits
        self.max_value = (1 << bits) - 1
        if not 0 <= value <= self.max_value:
            raise ValueError(f"initial value {value} out of range for {bits} bits")
        self.value = value

    def increment(self, amount: int = 1) -> int:
        """Add ``amount`` and clamp to the maximum; returns the new value."""
        self.value = min(self.max_value, self.value + amount)
        return self.value

    def decrement(self, amount: int = 1) -> int:
        """Subtract ``amount`` and clamp to zero; returns the new value."""
        self.value = max(0, self.value - amount)
        return self.value

    def reset(self, value: int = 0) -> None:
        if not 0 <= value <= self.max_value:
            raise ValueError(f"reset value {value} out of range for {self.bits} bits")
        self.value = value

    @property
    def is_saturated(self) -> bool:
        return self.value == self.max_value

    @property
    def is_zero(self) -> bool:
        return self.value == 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"SaturatingCounter(bits={self.bits}, value={self.value})"


class SignedSaturatingCounter:
    """A signed saturating counter spanning ``[-(2**(bits-1)), 2**(bits-1)-1]``.

    The *prediction* is the sign: values >= 0 predict taken.  ``strength``
    expresses how far the counter sits from the weak centre, which is what
    TAGE confidence estimation keys on (paper Section IV-A / Fig. 6a).
    """

    __slots__ = ("bits", "min_value", "max_value", "value")

    def __init__(self, bits: int, value: int = 0) -> None:
        if bits < 2:
            raise ValueError(f"signed counter needs at least 2 bits, got {bits}")
        self.bits = bits
        self.min_value = -(1 << (bits - 1))
        self.max_value = (1 << (bits - 1)) - 1
        if not self.min_value <= value <= self.max_value:
            raise ValueError(f"initial value {value} out of range for {bits} bits")
        self.value = value

    def update(self, taken: bool) -> int:
        """Nudge toward taken (+) or not-taken (-); returns the new value."""
        if taken:
            self.value = min(self.max_value, self.value + 1)
        else:
            self.value = max(self.min_value, self.value - 1)
        return self.value

    def reset(self, value: int = 0) -> None:
        if not self.min_value <= value <= self.max_value:
            raise ValueError(f"reset value {value} out of range for {self.bits} bits")
        self.value = value

    @property
    def prediction(self) -> bool:
        """Predicted direction: taken iff the counter is non-negative."""
        return self.value >= 0

    @property
    def is_saturated(self) -> bool:
        return self.value in (self.min_value, self.max_value)

    @property
    def is_weak(self) -> bool:
        """True when the counter sits at the weak centre (-1 or 0)."""
        return self.value in (-1, 0)

    @property
    def strength(self) -> int:
        """Distance from the weak centre: 0 for -1/0, up to ``2**(bits-1)-1``."""
        if self.value >= 0:
            return self.value
        return -self.value - 1

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"SignedSaturatingCounter(bits={self.bits}, value={self.value})"


def clamp(value: int, low: int, high: int) -> int:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty interval [{low}, {high}]")
    return max(low, min(high, value))
