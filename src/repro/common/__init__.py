"""Shared low-level building blocks used across the simulator.

This package holds the hardware-flavoured primitives that every other
subsystem is assembled from: saturating counters, global-history registers
with folded (CSR) views, LRU replacement state, and statistics helpers.
"""

from repro.common.counters import SaturatingCounter, SignedSaturatingCounter
from repro.common.history import FoldedHistory, GlobalHistory
from repro.common.lru import LRUSet
from repro.common.output import resolve_output_path
from repro.common.stats import StatBlock, amean, geomean, percent

__all__ = [
    "SaturatingCounter",
    "SignedSaturatingCounter",
    "GlobalHistory",
    "FoldedHistory",
    "LRUSet",
    "StatBlock",
    "amean",
    "geomean",
    "percent",
    "resolve_output_path",
]
