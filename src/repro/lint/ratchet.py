"""The strict-typing ratchet: per-module mypy error budgets that can only
shrink.

``repro.common``, ``repro.isa`` and ``repro.observe`` are checked with
``mypy --strict`` directly (zero errors, enforced in CI).  The rest of
``src/`` carries a committed budget file, ``mypy-ratchet.json``::

    {
      "schema": 1,
      "modules": {
        "src/repro/core/pipeline.py": 12,   # pinned: at most 12 errors
        "src/repro/core/ucp.py": null       # unpinned: tracked, not capped
      }
    }

Rules enforced by ``check``:

* a file **not listed** in the budget must be strict-clean — new modules
  cannot be born untyped;
* a **pinned** file may not exceed its budget;
* a pin may only ever be lowered (``update`` refuses increases without
  ``--force``), so coverage ratchets monotonically toward strict;
* ``null`` pins are a bootstrap state: ``check`` prints the measured
  count with a nudge to pin it, and ``update`` replaces null with the
  measured number.

Run it on the output of ``mypy --strict -p repro``::

    python -m repro.lint.ratchet check mypy-report.txt
    python -m repro.lint.ratchet update mypy-report.txt   # tighten pins
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

#: Budget file format version.
RATCHET_SCHEMA = 1

#: Default committed budget file (repo root).
DEFAULT_RATCHET = Path("mypy-ratchet.json")

#: One mypy error line: ``path.py:12: error: message  [code]``.
_ERROR_RE = re.compile(r"^(?P<path>[^:\s][^:]*\.py):\d+(?::\d+)?: error: ")


def count_errors(mypy_output: str) -> dict[str, int]:
    """Per-file error counts from raw mypy output (posix-normalised)."""
    counts: dict[str, int] = {}
    for line in mypy_output.splitlines():
        match = _ERROR_RE.match(line.strip())
        if match:
            path = Path(match.group("path")).as_posix()
            counts[path] = counts.get(path, 0) + 1
    return counts


def load_ratchet(path: Path) -> dict[str, int | None]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("schema") != RATCHET_SCHEMA:
        raise ValueError(f"{path}: not a ratchet file (schema {RATCHET_SCHEMA})")
    modules = data.get("modules")
    if not isinstance(modules, dict):
        raise ValueError(f"{path}: missing 'modules' mapping")
    return {str(key): value for key, value in modules.items()}


def save_ratchet(path: Path, modules: dict[str, int | None]) -> None:
    payload = {
        "schema": RATCHET_SCHEMA,
        "modules": {key: modules[key] for key in sorted(modules)},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def check(counts: dict[str, int], budget: dict[str, int | None]) -> tuple[bool, list[str]]:
    """Compare measured ``counts`` against the ``budget``.

    Returns ``(ok, messages)``; ``ok`` is False on any regression.
    """
    messages: list[str] = []
    ok = True
    for path in sorted(set(counts) | set(budget)):
        measured = counts.get(path, 0)
        if path not in budget:
            if measured:
                ok = False
                messages.append(
                    f"REGRESSION {path}: {measured} error(s) but the file is "
                    "not in the ratchet — new modules must be strict-clean "
                    "(or be deliberately added to mypy-ratchet.json)"
                )
            continue
        pin = budget[path]
        if pin is None:
            if measured:
                messages.append(
                    f"unpinned  {path}: {measured} error(s); pin it with "
                    "`python -m repro.lint.ratchet update`"
                )
            continue
        if measured > pin:
            ok = False
            messages.append(
                f"REGRESSION {path}: {measured} error(s) > budget {pin}"
            )
        elif measured < pin:
            messages.append(
                f"tighten   {path}: {measured} error(s) < budget {pin}; "
                "lower the pin with `python -m repro.lint.ratchet update`"
            )
    return ok, messages


def update(
    counts: dict[str, int],
    budget: dict[str, int | None],
    force: bool = False,
) -> tuple[dict[str, int | None], list[str]]:
    """New budget: pins lowered to measured counts, nulls pinned.

    Raising a pin is a contract violation and requires ``force`` (the
    honest fix is to repair the types, not the budget).
    """
    new_budget: dict[str, int | None] = dict(budget)
    messages: list[str] = []
    for path, pin in budget.items():
        measured = counts.get(path, 0)
        if pin is None:
            new_budget[path] = measured
            messages.append(f"pinned    {path}: {measured}")
        elif measured < pin:
            new_budget[path] = measured
            messages.append(f"lowered   {path}: {pin} -> {measured}")
        elif measured > pin:
            if not force:
                raise ValueError(
                    f"{path}: measured {measured} > budget {pin}; refusing to "
                    "raise a pin without --force"
                )
            new_budget[path] = measured
            messages.append(f"RAISED    {path}: {pin} -> {measured} (--force)")
    return new_budget, messages


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.ratchet",
        description="strict-typing ratchet over mypy output",
    )
    parser.add_argument("action", choices=["check", "update"])
    parser.add_argument(
        "mypy_output",
        help="file holding `mypy --strict -p repro` output ('-' for stdin)",
    )
    parser.add_argument(
        "--ratchet",
        type=Path,
        default=DEFAULT_RATCHET,
        metavar="FILE",
        help=f"budget file (default: {DEFAULT_RATCHET})",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="allow `update` to raise a pin (discouraged)",
    )
    args = parser.parse_args(argv)

    try:
        if args.mypy_output == "-":
            output = sys.stdin.read()
        else:
            output = Path(args.mypy_output).read_text(encoding="utf-8")
        budget = load_ratchet(args.ratchet)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"ratchet: {error}", file=sys.stderr)
        return 2

    counts = count_errors(output)

    if args.action == "check":
        ok, messages = check(counts, budget)
        for message in messages:
            print(message)
        total = sum(counts.values())
        print(f"ratchet check: {total} error(s) across {len(counts)} file(s); "
              f"{'OK' if ok else 'FAILED'}")
        return 0 if ok else 1

    try:
        new_budget, messages = update(counts, budget, force=args.force)
    except ValueError as error:
        print(f"ratchet: {error}", file=sys.stderr)
        return 1
    for message in messages:
        print(message)
    save_ratchet(args.ratchet, new_budget)
    print(f"wrote {args.ratchet}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
