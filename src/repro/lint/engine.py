"""The lint engine: file discovery → parse → rules → suppressed-filtered
report.

The engine is deliberately dependency-free (stdlib ``ast`` only) so the
contract checks run anywhere the simulator runs — no plugin loading, no
entry points.  Rules self-register into :data:`repro.lint.rules.RULES`
when their module imports; this module imports all rule modules at the
bottom, so constructing a :class:`LintEngine` is enough to get the full
rule set.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.effects import ProjectAnalysis
from repro.lint.findings import Finding
from repro.lint.rules import RULES, ProjectRule, Rule
from repro.lint.source import SourceModule, iter_source_files, load_module

#: Rule code attached to files the parser rejects.
SYNTAX_ERROR_CODE = "SIM000"

#: Default location of the committed cache-schema snapshot.
DEFAULT_SCHEMA_PATH = Path(__file__).parent / "cache_schema.json"


class LintInternalError(Exception):
    """The linter itself failed (exit code 2, never a finding)."""


@dataclass
class LintReport:
    """Outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


class LintEngine:
    """Runs every registered rule over a set of paths."""

    def __init__(
        self,
        rules: dict[str, Rule] | None = None,
        schema_path: Path | None = None,
    ) -> None:
        self.rules = dict(rules) if rules is not None else dict(RULES)
        self.schema_path = schema_path or DEFAULT_SCHEMA_PATH
        #: Interprocedural pass of the most recent ``lint_paths`` run
        #: (call graph + effect fixed point); also backs ``--callgraph-out``.
        self.analysis: ProjectAnalysis | None = None

    # -- running --------------------------------------------------------

    def lint_paths(self, paths: list[Path]) -> LintReport:
        report = LintReport()
        modules: dict[str, SourceModule] = {}
        for file in iter_source_files(paths):
            report.files_checked += 1
            try:
                module = load_module(file)
            except SyntaxError as error:
                report.findings.append(
                    Finding(
                        path=str(file),
                        line=error.lineno or 1,
                        col=(error.offset or 0) + 1,
                        rule=SYNTAX_ERROR_CODE,
                        message=f"syntax error: {error.msg}",
                    )
                )
                continue
            modules[module.module] = module
            self._run_file_rules(module, report)
        try:
            self.analysis = ProjectAnalysis.build(modules)
        except Exception as error:  # an analysis bug is an internal error
            raise LintInternalError(
                f"interprocedural analysis crashed: {error!r}"
            ) from error
        self._run_project_rules(modules, report)
        report.findings.sort()
        return report

    def _run_file_rules(self, module: SourceModule, report: LintReport) -> None:
        # Hybrid rules subclass ProjectRule *and* override per-file
        # ``check`` (which defaults to []), so every rule runs here.
        for rule in self.rules.values():
            try:
                found = rule.check(module)
            except Exception as error:  # a rule bug is an internal error
                raise LintInternalError(
                    f"rule {rule.code} crashed on {module.path}: {error!r}"
                ) from error
            self._collect(module, found, report)

    def _run_project_rules(
        self, modules: dict[str, SourceModule], report: LintReport
    ) -> None:
        for rule in self.rules.values():
            if not isinstance(rule, ProjectRule):
                continue
            try:
                found = rule.check_project(modules, self)
            except Exception as error:
                raise LintInternalError(
                    f"project rule {rule.code} crashed: {error!r}"
                ) from error
            for finding in found:
                module = self._module_for(modules, finding)
                if module is not None and module.suppressions.covers(finding):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)

    def _collect(
        self, module: SourceModule, found: list[Finding], report: LintReport
    ) -> None:
        for finding in found:
            if module.suppressions.covers(finding):
                report.suppressed += 1
            else:
                report.findings.append(finding)

    @staticmethod
    def _module_for(
        modules: dict[str, SourceModule], finding: Finding
    ) -> SourceModule | None:
        for module in modules.values():
            if module.display_path == finding.path:
                return module
        return None

    # -- schema snapshot maintenance ------------------------------------

    def write_schema_snapshot(self, paths: list[Path]) -> dict[str, object]:
        """Regenerate the cache-schema snapshot from the current sources."""
        from repro.lint.rules_schema import (
            RESULT_MODULE,
            RUNNER_MODULE,
            STATS_MODULE,
            extract_schema,
        )

        modules: dict[str, SourceModule] = {}
        for file in iter_source_files(paths):
            try:
                module = load_module(file)
            except SyntaxError:
                continue
            modules[module.module] = module
        missing = [
            name
            for name in (RUNNER_MODULE, RESULT_MODULE, STATS_MODULE)
            if name not in modules
        ]
        if missing:
            raise LintInternalError(
                f"cannot extract cache schema: {', '.join(missing)} not in the "
                "linted paths (run over src/)"
            )
        snapshot = extract_schema(modules)
        self.schema_path.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return snapshot


def parse_source(text: str, filename: str = "<lint>") -> ast.Module:
    """Small helper for tests: parse a fixture snippet."""
    return ast.parse(text, filename=filename)


# Rule modules self-register on import; importing them here makes the
# registry complete for anyone who imports the engine.
from repro.lint import (  # noqa: E402,F401
    rules_async,
    rules_boundary,
    rules_contracts,
    rules_determinism,
    rules_schema,
)
