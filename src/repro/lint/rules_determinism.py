"""Determinism rules: SIM001 (seeded RNG), SIM002 (wall clock), SIM003
(call-time environment reads).

Bit-identical replay is the foundation every other layer stands on — the
result cache, the differential oracle, the golden-stat fixtures, and the
idle-skip equivalence proofs all assume that the same (workload, config,
seed) triple produces the same counters on every run, in every process.
These rules reject the three classic ways simulators lose that property.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.lint.findings import Finding
from repro.lint.rules import ProjectRule, Rule, ScopedVisitor, dotted_name, register
from repro.lint.source import SourceModule

if TYPE_CHECKING:  # pragma: no cover - types only (cycle: effects
    # imports this module's constants, so effects is imported lazily)
    from repro.lint.engine import LintEngine

#: ``random`` module functions that use the hidden global Mersenne state.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "getstate",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "setstate",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``numpy.random`` names that are fine: explicitly seeded constructors.
_NUMPY_RANDOM_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
     "Philox", "MT19937", "SFC64", "RandomState"}
)

#: Wall-clock reading functions of the ``time`` module.
_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: Wall-clock ``datetime`` entry points (dotted suffixes).
_DATETIME_FNS = frozenset(
    {"datetime.now", "datetime.utcnow", "datetime.today", "date.today"}
)


@register
class UnseededRandomRule(Rule):
    code = "SIM001"
    title = "no unseeded global-state RNG (`random.*` / `numpy.random.*`)"
    rationale = """\
Module-level RNG functions (`random.random`, `numpy.random.rand`, ...)
draw from hidden global state shared across the whole process.  Any code
path that touches it — in any import order, from any worker — perturbs
every later draw, so results stop being a function of (workload, config,
seed) and the result cache, the differential oracle, and cross-process
determinism tests all silently break.  Draw from an explicitly seeded
`random.Random(seed)` / `numpy.random.default_rng(seed)` instance that is
owned by the component using it."""
    bad_example = """\
import random

def jitter() -> float:
    return random.random()  # global Mersenne state
"""
    good_example = """\
import random

def jitter(rng: random.Random) -> float:
    return rng.random()  # caller-owned, seeded generator
"""

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                banned: frozenset[str] | None = None
                if node.module == "random":
                    banned = _GLOBAL_RANDOM_FNS
                elif node.module in ("numpy.random", "np.random"):
                    banned = frozenset()  # everything except the OK list
                if banned is None:
                    continue
                for alias in node.names:
                    if alias.name in _NUMPY_RANDOM_OK:
                        continue
                    if node.module == "random" and alias.name not in banned:
                        continue
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"`from {node.module} import {alias.name}` binds "
                            "global-state RNG; use a seeded "
                            "random.Random / numpy.random.default_rng instance",
                        )
                    )
            elif isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is None:
                    continue
                if name.startswith("random.") and name.split(".")[1] in _GLOBAL_RANDOM_FNS:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"`{name}` uses the process-global RNG; draw from a "
                            "seeded random.Random instance instead",
                        )
                    )
                elif (
                    name.startswith(("numpy.random.", "np.random."))
                    and name.split(".")[2] not in _NUMPY_RANDOM_OK
                ):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"`{name}` uses numpy's global RNG; use "
                            "numpy.random.default_rng(seed) instead",
                        )
                    )
        return findings


@register
class WallClockRule(ProjectRule):
    code = "SIM002"
    title = "no wall-clock reads outside profiling/benchmark modules"
    rationale = """\
`time.time` / `perf_counter` / `datetime.now` values differ run to run,
so anything derived from them is nondeterministic by construction.  In a
simulator the only legitimate clock is the simulated cycle counter;
wall-clock reads are reserved for the profiling layer
(`repro.analysis.profile`) and the benchmark harness (`benchmarks/`),
which exist to measure the simulator rather than the simulated machine.
Timing telemetry elsewhere (e.g. the parallel engine's job timing) must
be explicitly suppressed so every wall-clock read is an audited,
deliberate decision."""
    bad_example = """\
import time

def stamp(stats) -> None:
    stats.set("finished_at", int(time.time()))
"""
    good_example = """\
def stamp(stats, cycle: int) -> None:
    stats.set("finished_at_cycle", cycle)  # simulated time only
"""

    #: Modules whose whole purpose is wall-clock measurement.
    ALLOWED_MODULES = frozenset({"repro.analysis.profile"})
    ALLOWED_PATH_PARTS = frozenset({"benchmarks"})

    def check(self, module: SourceModule) -> list[Finding]:
        if module.module in self.ALLOWED_MODULES:
            return []
        if self.ALLOWED_PATH_PARTS & set(module.path.parts):
            return []
        findings: list[Finding] = []
        clock_names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _TIME_FNS:
                        clock_names.add(alias.asname or alias.name)
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"`from time import {alias.name}` brings a "
                                "wall-clock source into a simulator module",
                            )
                        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is None:
                    continue
                if name.startswith("time.") and name.split(".", 1)[1] in _TIME_FNS:
                    findings.append(
                        self.finding(
                            module, node, f"wall-clock read `{name}` in simulator code"
                        )
                    )
                elif any(name.endswith(suffix) for suffix in _DATETIME_FNS):
                    findings.append(
                        self.finding(
                            module, node, f"wall-clock read `{name}` in simulator code"
                        )
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in clock_names
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"wall-clock call `{node.func.id}()` in simulator code",
                    )
                )
        return findings

    def check_project(
        self, modules: dict[str, SourceModule], engine: "LintEngine"
    ) -> list[Finding]:
        """The interprocedural arm: a call into an *exempt* module
        (profiling/benchmarks) that transitively reads the wall clock is
        invisible to the per-file scan — the read sits where reads are
        allowed — yet makes the caller time-dependent all the same.
        Non-exempt leaves are not re-reported here: the per-file arm
        already anchors a finding on the read itself."""
        from repro.lint.effects import WALL_CLOCK

        analysis = engine.analysis
        assert analysis is not None
        findings: list[Finding] = []
        for fn in sorted(analysis.graph.functions.values(), key=lambda f: f.qname):
            module = analysis.graph.modules.get(fn.module)
            if module is None or self._exempt(module):
                continue
            seen: set[tuple[int, str]] = set()
            for edge in analysis.graph.out_edges(fn.qname):
                if WALL_CLOCK not in analysis.effects.edge_effects(edge):
                    continue
                path, site = analysis.effects.trace(edge.callee, WALL_CLOCK)
                if site is None:
                    continue
                leaf = analysis.graph.functions.get(site.qname)
                leaf_module = (
                    analysis.graph.modules.get(leaf.module) if leaf else None
                )
                if leaf_module is None or not self._exempt(leaf_module):
                    continue
                key = (edge.line, edge.callee)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        path=module.display_path,
                        line=edge.line,
                        col=edge.col + 1,
                        rule=self.code,
                        message=(
                            f"call reaches wall-clock read `{site.detail}` "
                            f"inside exempt module `{leaf_module.module}`; the "
                            "caller becomes host-time dependent even though "
                            "the read itself is in allowed territory"
                        ),
                        effects=(WALL_CLOCK,),
                        call_path=tuple([fn.qname] + path),
                    )
                )
        return findings

    def _exempt(self, module: SourceModule) -> bool:
        return module.module in self.ALLOWED_MODULES or bool(
            self.ALLOWED_PATH_PARTS & set(module.path.parts)
        )


class _EnvScopeVisitor(ScopedVisitor):
    def __init__(self, rule: "ImportTimeEnvRule", module: SourceModule) -> None:
        super().__init__()
        self.rule = rule
        self.module = module
        self.findings: list[Finding] = []

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.at_import_time and dotted_name(node) == "os.environ":
            self.findings.append(
                self.rule.finding(
                    self.module,
                    node,
                    "`os.environ` read at import/class-body scope freezes the "
                    "value at first-import time; read it inside the function "
                    "that needs it",
                )
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.at_import_time and dotted_name(node.func) == "os.getenv":
            self.findings.append(
                self.rule.finding(
                    self.module,
                    node,
                    "`os.getenv` call at import/class-body scope freezes the "
                    "value at first-import time; read it inside the function "
                    "that needs it",
                )
            )
        self.generic_visit(node)


@register
class ImportTimeEnvRule(ProjectRule):
    code = "SIM003"
    title = "environment variables must be read at call time, not import time"
    rationale = """\
A module-level `os.environ.get(...)` snapshots the variable once, when the
module first happens to be imported; tests, the CLI and worker processes
that set the variable later silently operate on the stale value.  This is
exactly the PR 1 cache-dir bug class (`REPRO_SIM_CACHE_DIR` read at import
time ignored per-test overrides).  Every knob — `REPRO_SIM_CHECK`,
`REPRO_SIM_TRACE`, `REPRO_SIM_JOBS`, ... — follows the call-time contract:
a small accessor function reads the environment on each call.  Default
argument values and decorators of module-level `def`s evaluate at import
time and count as import scope."""
    bad_example = """\
import os

CACHE_DIR = os.environ.get("REPRO_SIM_CACHE_DIR", ".simcache")

def cache_dir() -> str:
    return CACHE_DIR
"""
    good_example = """\
import os

def cache_dir() -> str:
    return os.environ.get("REPRO_SIM_CACHE_DIR", ".simcache")
"""

    def check(self, module: SourceModule) -> list[Finding]:
        visitor = _EnvScopeVisitor(self, module)
        visitor.visit(module.tree)
        return visitor.findings

    def check_project(
        self, modules: dict[str, SourceModule], engine: "LintEngine"
    ) -> list[Finding]:
        """The interprocedural arm: a module-scope call whose callee
        (transitively) reads the environment freezes the knob exactly
        like an inline import-time read — but the read itself sits in a
        function, where the per-file scan rightly allows it."""
        from repro.lint.callgraph import MODULE_BODY
        from repro.lint.effects import ENV_READ

        analysis = engine.analysis
        assert analysis is not None
        findings: list[Finding] = []
        for fn in sorted(analysis.graph.functions.values(), key=lambda f: f.qname):
            if fn.name != MODULE_BODY:
                continue
            module = analysis.graph.modules.get(fn.module)
            if module is None:
                continue
            seen: set[tuple[int, str]] = set()
            for edge in analysis.graph.out_edges(fn.qname):
                if ENV_READ not in analysis.effects.edge_effects(edge):
                    continue
                key = (edge.line, edge.callee)
                if key in seen:
                    continue
                seen.add(key)
                path, site = analysis.effects.trace(edge.callee, ENV_READ)
                leaf = f" (`{site.detail}`)" if site else ""
                findings.append(
                    Finding(
                        path=module.display_path,
                        line=edge.line,
                        col=edge.col + 1,
                        rule=self.code,
                        message=(
                            f"import-time call to `{edge.callee}` reaches an "
                            f"environment read{leaf}; the knob freezes at "
                            "first-import time — call this at call time "
                            "instead"
                        ),
                        effects=(ENV_READ,),
                        call_path=tuple([fn.qname] + path),
                    )
                )
        return findings
