"""Boundary rules: SIM012 (unpicklable payloads into process-pool
submits) and SIM013 (wall-clock/RNG effects feeding StatBlock counters).

Both consume the interprocedural effect pass: SIM012 follows the
``unpicklable-capture`` effect into `ProcessPoolExecutor.submit` call
sites (`repro.analysis.parallel`, `repro.serve.scheduler`), and SIM013
re-proves — statically, project-wide — the determinism contract that the
kernel-vs-interpreter differential oracle checks dynamically: nothing
derived from host time or global RNG may reach a simulated counter.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.lint.effects import (
    UNPICKLABLE_CAPTURE,
    UNSEEDED_RNG,
    WALL_CLOCK,
    ProjectAnalysis,
    external_name,
)
from repro.lint.findings import Finding
from repro.lint.rules import ProjectRule, call_args, dotted_name, register
from repro.lint.rules_contracts import _is_stats_receiver

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.callgraph import FunctionNode
    from repro.lint.engine import LintEngine
    from repro.lint.source import SourceModule

#: Packages whose pools cross a pickle boundary.
POOL_SCOPES: tuple[str, ...] = ("repro.analysis", "repro.serve")

#: Packages whose counters are the simulation results.
STAT_SCOPES: tuple[str, ...] = ("repro.core", "repro.isa")

#: Constructors whose product definitely cannot be pickled.
_UNPICKLABLE_CTORS = frozenset(
    {
        "open",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "asyncio.Lock",
        "asyncio.Event",
        "asyncio.Condition",
        "asyncio.Queue",
        "socket.socket",
        "socket.create_connection",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
    }
)

_TELEMETRY_PREFIX = "repro.observe.telemetry"
_TELEMETRY_FACTORIES = frozenset({"maybe", "maybe_spans", "maybe_recorder"})


def _in_scopes(module: str, scopes: tuple[str, ...]) -> bool:
    return any(module == s or module.startswith(s + ".") for s in scopes)


def _analysis(engine: "LintEngine") -> ProjectAnalysis:
    assert engine.analysis is not None
    return engine.analysis


def _is_unpicklable_ctor(expr: ast.expr, bindings: dict[str, str]) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    name = dotted_name(expr.func)
    if name is None:
        return False
    resolved = external_name(name, bindings)
    if resolved in _UNPICKLABLE_CTORS:
        return True
    return (
        resolved.startswith(_TELEMETRY_PREFIX)
        and resolved.split(".")[-1] in _TELEMETRY_FACTORIES
    )


def _is_poolish(receiver: ast.expr) -> bool:
    """Does the submit receiver look like an executor pool?  Matches the
    repo's idioms: a name/attr whose last segment mentions "pool"
    (``pool``, ``self._pool``) or a call to one (``self.pool()``)."""
    expr = receiver
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = dotted_name(expr)
    if name is None:
        return False
    return "pool" in name.split(".")[-1].lower()


@register
class ProcessBoundaryRule(ProjectRule):
    code = "SIM012"
    title = "no unpicklable objects into ProcessPoolExecutor.submit payloads"
    rationale = """\
Worker-pool payloads cross a pickle boundary: open handles, locks,
asyncio primitives, live sockets, and telemetry handles
(registries/sinks from `telemetry.maybe*()`) either crash the submit
with an opaque `TypeError: cannot pickle` at runtime or — worse —
smuggle loop-bound state into a worker process.  Job entries must be
module-level functions and payloads must be plain data (the SimJob /
dict shapes `repro.analysis.parallel` and `repro.serve.scheduler`
already use).  Lambdas and nested functions cannot be pickled at all."""
    bad_example = """\
from concurrent.futures import ProcessPoolExecutor

def run_jobs(jobs) -> None:
    pool = ProcessPoolExecutor()
    log = open("run.log", "w")
    for job in jobs:
        pool.submit(execute, job, log)

def execute(job, log) -> None:
    log.write(str(job))
"""
    good_example = """\
from concurrent.futures import ProcessPoolExecutor

def run_jobs(jobs) -> None:
    pool = ProcessPoolExecutor()
    for job in jobs:
        pool.submit(execute, job, "run.log")

def execute(job, log_path: str) -> None:
    with open(log_path, "a") as fh:
        fh.write(str(job))
"""
    example_path = "src/repro/analysis/mod.py"

    def check_project(
        self, modules: dict[str, "SourceModule"], engine: "LintEngine"
    ) -> list[Finding]:
        analysis = _analysis(engine)
        findings: list[Finding] = []
        for fn in sorted(
            analysis.graph.functions.values(), key=lambda f: f.qname
        ):
            if not _in_scopes(fn.module, POOL_SCOPES) or fn.is_module_body:
                continue
            module = analysis.graph.modules[fn.module]
            bindings = analysis.graph.bindings[fn.module]
            unpicklable_locals = self._unpicklable_locals(fn, bindings)
            nested_defs = {
                sub.name
                for sub in ast.walk(fn.node)
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                and sub is not fn.node
            }
            for node in ast.walk(fn.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "submit"
                    and _is_poolish(node.func.value)
                ):
                    continue
                findings.extend(
                    self._check_submit(
                        node,
                        fn,
                        module.display_path,
                        bindings,
                        unpicklable_locals,
                        nested_defs,
                        analysis,
                    )
                )
        return findings

    def _unpicklable_locals(
        self, fn: "FunctionNode", bindings: dict[str, str]
    ) -> dict[str, str]:
        """Local name -> offending constructor, for names assigned an
        unpicklable object anywhere in the function (flow-insensitive)."""
        out: dict[str, str] = {}
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Assign) and _is_unpicklable_ctor(
                sub.value, bindings
            ):
                assert isinstance(sub.value, ast.Call)
                ctor = dotted_name(sub.value.func) or "?"
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = ctor
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    if item.optional_vars is None:
                        continue
                    if _is_unpicklable_ctor(item.context_expr, bindings):
                        assert isinstance(item.context_expr, ast.Call)
                        ctor = dotted_name(item.context_expr.func) or "?"
                        if isinstance(item.optional_vars, ast.Name):
                            out[item.optional_vars.id] = ctor
        return out

    def _check_submit(
        self,
        node: ast.Call,
        fn: "FunctionNode",
        path: str,
        bindings: dict[str, str],
        unpicklable_locals: dict[str, str],
        nested_defs: set[str],
        analysis: ProjectAnalysis,
    ) -> list[Finding]:
        findings: list[Finding] = []

        def flag(arg: ast.expr, why: str) -> None:
            findings.append(
                Finding(
                    path=path,
                    line=getattr(arg, "lineno", node.lineno),
                    col=getattr(arg, "col_offset", node.col_offset) + 1,
                    rule=self.code,
                    message=(
                        f"{why} flows into a process-pool submit in "
                        f"`{fn.name}`; payloads must be plain picklable data "
                        "and entry points module-level functions"
                    ),
                    effects=(UNPICKLABLE_CAPTURE,),
                    call_path=(fn.qname,),
                )
            )

        for index, arg in enumerate(call_args(node)):
            if isinstance(arg, ast.Lambda):
                flag(arg, "a lambda (unpicklable)")
                continue
            if index == 0 and isinstance(arg, ast.Name) and arg.id in nested_defs:
                flag(arg, f"nested function `{arg.id}` (unpicklable)")
                continue
            if isinstance(arg, ast.Name) and arg.id in unpicklable_locals:
                flag(
                    arg,
                    f"`{arg.id}` (created by `{unpicklable_locals[arg.id]}`)",
                )
                continue
            if _is_unpicklable_ctor(arg, bindings):
                assert isinstance(arg, ast.Call)
                flag(arg, f"`{dotted_name(arg.func)}(...)` (unpicklable)")
                continue
            if isinstance(arg, ast.Call):
                # A call into a project function that captures
                # unpicklable state returns a poisoned payload.
                for edge in analysis.graph.out_edges(fn.qname):
                    if (
                        edge.line == arg.lineno
                        and edge.col == arg.col_offset
                        and UNPICKLABLE_CAPTURE
                        in analysis.effects.edge_effects(edge)
                    ):
                        flag(
                            arg,
                            f"result of `{edge.callee}` (captures "
                            "unpicklable state)",
                        )
                        break
        return findings


@register
class StatFeedDeterminismRule(ProjectRule):
    code = "SIM013"
    title = "no wall-clock/RNG effect reachable from functions feeding StatBlock counters"
    rationale = """\
Simulated counters must be a pure function of (workload, config, seed):
the result cache keys on exactly that triple, and the kernel-vs-
interpreter differential oracle (PR 8) compares counters bit-for-bit
across engines and processes.  A function in `repro.core` / `repro.isa`
that feeds a `StatBlock` and — anywhere below it in the call graph —
reads host time or global RNG makes counters depend on the host, which
the per-file wall-clock rule (SIM002) cannot see once the read hides
behind a helper.  This is the static twin of the dynamic determinism
check: the oracle catches a divergence when it runs; this rule proves
the code shape cannot diverge."""
    bad_example = """\
import time

class Retire:
    def commit(self, uops_stats) -> None:
        uops_stats.add("retired", self._stamp())

    def _stamp(self) -> int:
        return int(time.time())
"""
    good_example = """\
class Retire:
    def commit(self, uops_stats, cycle: int) -> None:
        uops_stats.add("retired_cycle", cycle)
"""
    example_path = "src/repro/core/mod.py"

    def check_project(
        self, modules: dict[str, "SourceModule"], engine: "LintEngine"
    ) -> list[Finding]:
        analysis = _analysis(engine)
        findings: list[Finding] = []
        for fn in sorted(
            analysis.graph.functions.values(), key=lambda f: f.qname
        ):
            if not _in_scopes(fn.module, STAT_SCOPES) or fn.is_module_body:
                continue
            tainted = analysis.effects.effects_of(fn.qname) & {
                WALL_CLOCK,
                UNSEEDED_RNG,
            }
            if not tainted:
                continue
            module = analysis.graph.modules[fn.module]
            for node in ast.walk(fn.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("add", "set")
                    and _is_stats_receiver(node.func.value)
                ):
                    continue
                effect = sorted(tainted)[0]
                path, site = analysis.effects.trace(fn.qname, effect)
                leaf = f" (`{site.detail}`)" if site else ""
                findings.append(
                    Finding(
                        path=module.display_path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule=self.code,
                        message=(
                            f"`{fn.name}` feeds a StatBlock counter but has "
                            f"`{effect}` effect{leaf}; counters must be a pure "
                            "function of (workload, config, seed)"
                        ),
                        effects=tuple(sorted(tainted)),
                        call_path=tuple(path),
                    )
                )
        return findings
