"""Rule base classes, the rule registry, and shared AST helpers.

Every rule is a singleton registered by :func:`register`; the engine runs
the per-file rules over each parsed module and the project rules once over
the whole run set.  A rule carries its own documentation — title,
rationale, and a known-bad / known-good example pair — which backs both
``repro lint --explain CODE`` and the fixture tests (each rule's examples
must actually fire / pass, see ``tests/test_lint.py``).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Any

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.engine import LintEngine
    from repro.lint.source import SourceModule


class Rule:
    """One static check, applied per file."""

    code: str = ""
    title: str = ""
    #: Why the contract exists (shown by ``--explain``).
    rationale: str = ""
    #: A minimal snippet the rule must flag.
    bad_example: str = ""
    #: The corrected form of the bad example; must lint clean.
    good_example: str = ""
    #: Where the selfcheck writes the examples — rules scope by module
    #: name / path, so each rule declares a path inside its own scope.
    example_path: str = "src/repro/core/mod.py"
    #: Rules whose examples are self-contained single files take part in
    #: the mutation-style selfcheck (``python -m repro.lint.selfcheck``).
    selfchecked: bool = True

    def check(self, module: "SourceModule") -> list[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: "SourceModule",
        node: ast.AST,
        message: str,
        effects: tuple[str, ...] = (),
        call_path: tuple[str, ...] = (),
    ) -> Finding:
        return Finding(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            message=message,
            effects=effects,
            call_path=call_path,
        )

    def explain(self) -> str:
        lines = [f"{self.code}: {self.title}", "", self.rationale.strip(), ""]
        if self.bad_example:
            lines += ["bad:", _indent(self.bad_example), ""]
        if self.good_example:
            lines += ["good:", _indent(self.good_example), ""]
        lines.append("suppress with `# lint-ok: " + self.code + " <reason>` on the line.")
        return "\n".join(lines)


class ProjectRule(Rule):
    """A rule that needs the whole run set (cross-file contracts)."""

    def check(self, module: "SourceModule") -> list[Finding]:
        return []

    def check_project(
        self, modules: dict[str, "SourceModule"], engine: "LintEngine"
    ) -> list[Finding]:
        raise NotImplementedError


#: Registry: code -> rule singleton, populated at import time.
RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    rule = cls()
    if not rule.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return cls


def _indent(text: str) -> str:
    return "\n".join("    " + line for line in text.strip().splitlines())


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def guard_targets_positive(test: ast.expr) -> set[str]:
    """Receivers proven non-None/truthy when ``test`` is true.

    Handles the gating idioms this codebase uses: ``x``, ``x is not
    None``, ``not x`` (negated), and ``and`` chains.
    """
    if isinstance(test, (ast.Name, ast.Attribute)):
        name = dotted_name(test)
        return {name} if name else set()
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        if isinstance(test.ops[0], ast.IsNot) and _is_none(test.comparators[0]):
            name = dotted_name(test.left)
            return {name} if name else set()
        return set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        found: set[str] = set()
        for value in test.values:
            found |= guard_targets_positive(value)
        return found
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return guard_targets_negative(test.operand)
    return set()


def guard_targets_negative(test: ast.expr) -> set[str]:
    """Receivers proven non-None when ``test`` is *false* (else-branch /
    early-exit guards like ``if x is None: return``)."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        if isinstance(test.ops[0], ast.Is) and _is_none(test.comparators[0]):
            name = dotted_name(test.left)
            return {name} if name else set()
        return set()
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return guard_targets_positive(test.operand)
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        # The else-branch of `a is None or b is None` proves both non-None.
        found: set[str] = set()
        for value in test.values:
            found |= guard_targets_negative(value)
        return found
    return set()


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def terminates(stmt: ast.stmt) -> bool:
    """Does ``stmt`` unconditionally leave the enclosing block?"""
    return isinstance(stmt, (ast.Return, ast.Raise, ast.Continue, ast.Break))


def call_args(node: ast.Call) -> list[ast.expr]:
    return list(node.args) + [kw.value for kw in node.keywords]


class ScopedVisitor(ast.NodeVisitor):
    """A visitor that tracks whether traversal is inside a deferred scope
    (function/lambda body — *not* executed at import time).

    Default argument values, decorators, and annotations of a ``def`` at
    module or class scope are evaluated when the ``def`` runs, i.e. at
    import time — they are visited *outside* the deferred scope.
    """

    def __init__(self) -> None:
        self.depth = 0

    @property
    def at_import_time(self) -> bool:
        return self.depth == 0

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for decorator in node.decorator_list:
            self.visit(decorator)
        self._visit_eager_args(node.args)
        if node.returns is not None:
            self.visit(node.returns)
        self.depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.depth -= 1

    def _visit_eager_args(self, args: ast.arguments) -> None:
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            self.visit(default)
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None:
                self.visit(arg.annotation)
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is not None:
                self.visit(vararg.annotation)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> Any:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> Any:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> Any:
        self._visit_eager_args(node.args)
        self.depth += 1
        self.visit(node.body)
        self.depth -= 1
