"""Mutation-style self-check of the rule catalogue.

For every registered rule, write its own documented ``bad_example`` /
``good_example`` into a scratch tree at the rule's declared
``example_path`` (rules scope by module name, so the path matters) and
run the full engine over it: the bad example must fire the rule, the
good example must not.  This is the same philosophy as the verifier's
fault registry — a checker that cannot catch its own canonical bad input
is broken, and the cheapest time to learn that is in CI, not during the
incident the rule was written to prevent.

Run as ``python -m repro.lint.selfcheck``; exits 0 when every rule
passes, 1 otherwise.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.lint.engine import LintEngine
from repro.lint.rules import RULES, Rule


def check_rule(rule: Rule) -> list[str]:
    """Problems found with one rule's examples (empty = healthy)."""
    problems: list[str] = []
    cases = (("bad", rule.bad_example, True), ("good", rule.good_example, False))
    for label, code_text, must_fire in cases:
        if not code_text:
            problems.append(f"{rule.code}: no {label} example")
            continue
        with tempfile.TemporaryDirectory(prefix="lint-selfcheck-") as tmp:
            file = Path(tmp) / rule.example_path
            file.parent.mkdir(parents=True, exist_ok=True)
            file.write_text(code_text, encoding="utf-8")
            engine = LintEngine(schema_path=Path(tmp) / "schema.json")
            report = engine.lint_paths([file])
            fired = {finding.rule for finding in report.findings}
        if must_fire and rule.code not in fired:
            problems.append(
                f"{rule.code}: bad example NOT caught (fired: "
                f"{sorted(fired) or 'nothing'}) — the rule is blind to its "
                "own documented violation"
            )
        elif not must_fire and rule.code in fired:
            problems.append(
                f"{rule.code}: good example flagged — the documented fix "
                "does not satisfy the rule"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    del argv
    checked = 0
    skipped: list[str] = []
    failures: list[str] = []
    for code in sorted(RULES):
        rule = RULES[code]
        if not rule.selfchecked:
            skipped.append(code)
            continue
        checked += 1
        failures.extend(check_rule(rule))
    for line in failures:
        print(f"selfcheck: {line}", file=sys.stderr)
    status = "FAILED" if failures else "ok"
    skipped_note = f", skipped: {', '.join(skipped)}" if skipped else ""
    print(
        f"selfcheck {status}: {checked} rule(s) checked against their own "
        f"examples{skipped_note}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
