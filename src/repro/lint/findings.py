"""Findings and suppression comments for :mod:`repro.lint`.

A :class:`Finding` is one rule violation anchored to a source location.
Suppressions are in-source comments:

* ``# lint-ok: SIM002`` — suppress the named rule(s) on this line
  (``# lint-ok: SIM002, SIM005`` for several; trailing prose after the
  codes documents *why* and is strongly encouraged);
* ``# lint-ok-file: SIM002`` — suppress the named rule(s) for the whole
  file (use sparingly; a module-wide exemption should usually become an
  engine-level scope rule instead).

A finding is suppressed when a matching ``lint-ok`` sits on the line the
finding anchors to (for a multi-line statement: the line of the construct
the rule points at, which is what the reporter prints).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Matches the code list of a suppression comment.
_SUPPRESS_RE = re.compile(
    r"#\s*lint-ok(?P<scope>-file)?:\s*(?P<codes>[A-Z]{2,8}\d{3}(?:\s*,\s*[A-Z]{2,8}\d{3})*)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line:col``.

    Interprocedural rules additionally carry the inferred ``effects``
    that triggered the finding and the ``call_path`` (caller → … → leaf
    qualified names) that makes an indirect violation auditable.  Both
    default empty for the per-file rules.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    effects: tuple[str, ...] = ()
    call_path: tuple[str, ...] = ()

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.call_path:
            text += f" [path: {' -> '.join(self.call_path)}]"
        return text

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "effects": list(self.effects),
            "call_path": list(self.call_path),
        }


@dataclass(frozen=True)
class Suppressions:
    """Parsed ``lint-ok`` directives of one source file."""

    by_line: dict[int, frozenset[str]]
    whole_file: frozenset[str]

    def covers(self, finding: Finding) -> bool:
        return self.covers_site(finding.line, finding.rule)

    def covers_site(self, line: int, rule: str) -> bool:
        """Is ``rule`` suppressed at ``line``?  Used both for findings
        and by the effect pass: a suppressed intrinsic site is an
        *audited* effect and must not poison its callers."""
        if rule in self.whole_file:
            return True
        return rule in self.by_line.get(line, frozenset())


def parse_suppressions(text: str) -> Suppressions:
    """Scan source ``text`` for ``lint-ok`` / ``lint-ok-file`` comments.

    Parsing is line-based on purpose: a directive inside a string literal
    would also count, but that false-accept is harmless and keeps the
    scanner independent of tokenization (it must work even on files the
    AST parser rejects).
    """
    by_line: dict[int, frozenset[str]] = {}
    whole_file: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "lint-ok" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = frozenset(code.strip() for code in match.group("codes").split(","))
        if match.group("scope"):
            whole_file |= codes
        else:
            by_line[lineno] = by_line.get(lineno, frozenset()) | codes
    return Suppressions(by_line=by_line, whole_file=frozenset(whole_file))
