"""Event-loop safety rules: SIM009 (blocking call reachable from async),
SIM010 (threading locks / unlocked shared mutation in async code), and
SIM011 (lock held across an ``await``).

All three consume the interprocedural pass (`repro.lint.callgraph` /
`repro.lint.effects`): the whole point is that a blocking ``open()`` two
calls below an ``async def`` handler stalls the event loop exactly as
hard as one written inline, and per-file linting cannot see it.

Scope: SIM009 and SIM010's lock arm police ``repro.serve`` and
``repro.observe.telemetry`` — the two packages that actually run an
asyncio loop.  SIM010's cross-``await`` mutation arm and SIM011 apply to
every ``async def`` in the tree (holding a lock across an ``await`` is
wrong wherever it happens).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.lint.callgraph import FunctionNode
from repro.lint.effects import (
    BLOCKING_IO,
    THREAD_LOCK_ACQUIRE,
    EffectSite,
    ModuleContext,
    ProjectAnalysis,
)
from repro.lint.findings import Finding
from repro.lint.rules import ProjectRule, dotted_name, register

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.engine import LintEngine
    from repro.lint.source import SourceModule

#: Packages that run an asyncio event loop.
ASYNC_SCOPES: tuple[str, ...] = ("repro.serve", "repro.observe.telemetry")


def _in_scopes(module: str, scopes: tuple[str, ...]) -> bool:
    return any(module == s or module.startswith(s + ".") for s in scopes)


def _analysis(engine: "LintEngine") -> ProjectAnalysis:
    assert engine.analysis is not None  # the engine builds it first
    return engine.analysis


def _is_lockish_name(expr: ast.expr) -> bool:
    """Name heuristic for lock objects the resolver cannot type: the
    last dotted segment mentions "lock" (``self._lock``, ``conn.lock``)."""
    name = dotted_name(expr)
    if name is None:
        return False
    return "lock" in name.split(".")[-1].lower()


class _AsyncRule(ProjectRule):
    """Shared plumbing: iterate in-scope async defs with their context."""

    def _async_functions(
        self, engine: "LintEngine", scopes: tuple[str, ...] | None
    ) -> list[tuple[FunctionNode, ModuleContext]]:
        analysis = _analysis(engine)
        out: list[tuple[FunctionNode, ModuleContext]] = []
        for fn in analysis.graph.functions.values():
            if not fn.is_async:
                continue
            if scopes is not None and not _in_scopes(fn.module, scopes):
                continue
            out.append((fn, analysis.effects.contexts[fn.module]))
        out.sort(key=lambda pair: pair[0].qname)
        return out


@register
class AsyncBlockingRule(_AsyncRule):
    code = "SIM009"
    title = "no blocking call reachable from an async def without an executor hop"
    rationale = """\
`repro.serve` and the telemetry endpoint run on one asyncio event loop;
a blocking call — file I/O, `time.sleep`, a subprocess, a socket — made
anywhere *below* an `async def` freezes every connected client for its
duration.  Per-file linting cannot see a blocking `open()` two helpers
down the call chain, so this rule walks the project call graph and the
inferred `blocking-io` effect.  The sanctioned escape hatch is an
executor hop (`await asyncio.to_thread(fn, ...)` or
`loop.run_in_executor`): passing the function *by reference* creates no
call edge, so hopped work is clean by construction."""
    bad_example = """\
import time

async def handle() -> None:
    time.sleep(0.05)  # freezes every other client
"""
    good_example = """\
import asyncio

async def handle() -> None:
    await asyncio.to_thread(warm_cache)

def warm_cache() -> None:
    with open("cache.bin", "rb") as fh:
        fh.read()
"""
    example_path = "src/repro/serve/mod.py"

    def check_project(
        self, modules: dict[str, "SourceModule"], engine: "LintEngine"
    ) -> list[Finding]:
        analysis = _analysis(engine)
        findings: list[Finding] = []
        for fn, ctx in self._async_functions(engine, ASYNC_SCOPES):
            module = ctx.module
            for site in analysis.effects.intrinsic.get(fn.qname, []):
                if site.effect != BLOCKING_IO:
                    continue
                findings.append(
                    Finding(
                        path=module.display_path,
                        line=site.line,
                        col=site.col,
                        rule=self.code,
                        message=(
                            f"blocking call `{site.detail}` inside async "
                            f"`{fn.name}` stalls the event loop; hop via "
                            "`await asyncio.to_thread(...)`"
                        ),
                        effects=(BLOCKING_IO,),
                        call_path=(fn.qname,),
                    )
                )
            seen: set[tuple[int, str]] = set()
            for edge in analysis.graph.out_edges(fn.qname):
                if BLOCKING_IO not in analysis.effects.edge_effects(edge):
                    continue
                key = (edge.line, edge.callee)
                if key in seen:
                    continue
                seen.add(key)
                path, site = analysis.effects.trace(edge.callee, BLOCKING_IO)
                leaf = f" (`{site.detail}` at depth {len(path)})" if site else ""
                findings.append(
                    Finding(
                        path=module.display_path,
                        line=edge.line,
                        col=edge.col + 1,
                        rule=self.code,
                        message=(
                            f"call from async `{fn.name}` reaches blocking "
                            f"I/O{leaf}; hop via `await asyncio.to_thread(...)` "
                            "or move the blocking work"
                        ),
                        effects=(BLOCKING_IO,),
                        call_path=tuple([fn.qname] + path),
                    )
                )
        return findings


@register
class AsyncLockRule(_AsyncRule):
    code = "SIM010"
    title = "no threading locks in async code; no unlocked shared mutation across await"
    rationale = """\
Two async-shared-state hazards.  (A) A `threading.Lock` acquired on a
code path reachable from an `async def` blocks the whole event loop if
contended — and the contender may be a worker thread that needs the loop
to progress: a deadlock, not just a stall.  This arm is interprocedural:
the acquire is flagged wherever it lives, with the async call path that
reaches it.  (B) Mutating the same module global or `self` attribute on
both sides of an `await` without holding the owning lock is a lost-update
bug: every `await` is a scheduling point where another handler can run
and observe or clobber the intermediate state.  Mutations inside an
`async with <lock>:` block are considered owned and are exempt."""
    bad_example = """\
class Tracker:
    def __init__(self) -> None:
        self.active = 0

    async def track(self, job) -> None:
        self.active = self.active + 1
        await job.run()
        self.active = self.active - 1
"""
    good_example = """\
import asyncio

class Tracker:
    def __init__(self) -> None:
        self.active = 0
        self.lock = asyncio.Lock()

    async def track(self, job) -> None:
        async with self.lock:
            self.active = self.active + 1
            await job.run()
            self.active = self.active - 1
"""
    example_path = "src/repro/serve/mod.py"

    def check_project(
        self, modules: dict[str, "SourceModule"], engine: "LintEngine"
    ) -> list[Finding]:
        analysis = _analysis(engine)
        findings: list[Finding] = []
        # Arm A: threading-lock acquisition reachable from async code,
        # anchored at the acquire site so one suppression with the
        # design rationale covers every async route to it.
        flagged: set[tuple[str, int]] = set()
        for fn, _ctx in self._async_functions(engine, ASYNC_SCOPES):
            sites: list[tuple[EffectSite, list[str]]] = []
            for site in analysis.effects.intrinsic.get(fn.qname, []):
                if site.effect == THREAD_LOCK_ACQUIRE:
                    sites.append((site, [fn.qname]))
            for edge in analysis.graph.out_edges(fn.qname):
                if THREAD_LOCK_ACQUIRE not in analysis.effects.edge_effects(edge):
                    continue
                path, site = analysis.effects.trace(
                    edge.callee, THREAD_LOCK_ACQUIRE
                )
                if site is not None:
                    sites.append((site, [fn.qname] + path))
            for site, path in sites:
                owner = analysis.graph.functions.get(site.qname)
                module = (
                    analysis.graph.modules.get(owner.module) if owner else None
                )
                if module is None:
                    continue
                key = (module.display_path, site.line)
                if key in flagged:
                    continue
                flagged.add(key)
                findings.append(
                    Finding(
                        path=module.display_path,
                        line=site.line,
                        col=site.col,
                        rule=self.code,
                        message=(
                            f"threading lock acquired (`{site.detail}`) on a "
                            f"path reachable from async `{path[0]}`; a "
                            "contended acquire blocks the event loop — use "
                            "asyncio.Lock or hop to an executor"
                        ),
                        effects=(THREAD_LOCK_ACQUIRE,),
                        call_path=tuple(path),
                    )
                )
        # Arm B: unlocked mutation of shared state across an await.
        for fn, ctx in self._async_functions(engine, None):
            if fn.is_module_body:
                continue
            findings.extend(self._cross_await(fn, ctx))
        return findings

    def _cross_await(
        self, fn: FunctionNode, ctx: ModuleContext
    ) -> list[Finding]:
        events: list[tuple[str, str, ast.AST]] = []
        _collect_await_events(fn.node, ctx, events, in_locked=False)
        findings: list[Finding] = []
        first_seen: dict[str, int] = {}
        awaited_after: dict[str, bool] = {}
        reported: set[str] = set()
        for kind, target, node in events:
            if kind == "await":
                for name in first_seen:
                    awaited_after[name] = True
                continue
            if target not in first_seen:
                first_seen[target] = 1
                awaited_after[target] = False
            elif awaited_after.get(target) and target not in reported:
                reported.add(target)
                findings.append(
                    Finding(
                        path=ctx.module.display_path,
                        line=getattr(node, "lineno", fn.lineno),
                        col=getattr(node, "col_offset", 0) + 1,
                        rule=self.code,
                        message=(
                            f"`{target}` mutated on both sides of an await in "
                            f"async `{fn.name}` without the owning lock; "
                            "another handler can run at the await and clobber "
                            "the intermediate state — wrap the section in "
                            "`async with <lock>:`"
                        ),
                        call_path=(fn.qname,),
                    )
                )
        return findings


@register
class LockAcrossAwaitRule(_AsyncRule):
    code = "SIM011"
    title = "no lock held across an await"
    rationale = """\
`with lock:` around an `await` holds the lock for the full duration of
whatever the await waits on.  For a `threading` lock that can deadlock
the loop outright; for an asyncio lock (the manual
`await lock.acquire()` / `lock.release()` form) it silently serialises
every handler behind the slowest awaited operation and leaks the lock if
the await raises.  Take sync locks only around sync critical sections,
and spell asyncio locking `async with lock:` so the release is
exception-safe — `async with` is exactly the exempt form."""
    bad_example = """\
import threading

_lock = threading.Lock()

async def refresh(source) -> None:
    with _lock:
        data = await source.fetch()
"""
    good_example = """\
import asyncio

_lock = asyncio.Lock()

async def refresh(source) -> None:
    async with _lock:
        data = await source.fetch()
"""
    example_path = "src/repro/analysis/mod.py"

    def check_project(
        self, modules: dict[str, "SourceModule"], engine: "LintEngine"
    ) -> list[Finding]:
        findings: list[Finding] = []
        for fn, ctx in self._async_functions(engine, None):
            if fn.is_module_body:
                continue
            findings.extend(self._scan(fn, ctx))
        return findings

    def _scan(self, fn: FunctionNode, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.With):
                for item in node.items:
                    if not _is_lock_expr(item.context_expr, ctx, fn):
                        continue
                    if any(
                        isinstance(sub, ast.Await) for sub in ast.walk(node)
                    ):
                        findings.append(
                            Finding(
                                path=ctx.module.display_path,
                                line=node.lineno,
                                col=node.col_offset + 1,
                                rule=self.code,
                                message=(
                                    f"lock held across an await in async "
                                    f"`{fn.name}`; take sync locks around "
                                    "sync sections only, or use "
                                    "`async with lock:`"
                                ),
                                call_path=(fn.qname,),
                            )
                        )
                        break
        findings.extend(self._manual_acquire(fn, ctx))
        return findings

    def _manual_acquire(
        self, fn: FunctionNode, ctx: ModuleContext
    ) -> list[Finding]:
        """`lock.acquire()` … `await` … `lock.release()` in one body."""
        held: dict[str, ast.AST] = {}
        findings: list[Finding] = []
        reported: set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = dotted_name(node.func.value)
                if receiver is None or not _is_lock_expr(
                    node.func.value, ctx, fn
                ):
                    continue
                if node.func.attr == "acquire":
                    held.setdefault(receiver, node)
                elif node.func.attr == "release":
                    held.pop(receiver, None)
            elif isinstance(node, ast.Await) and held:
                # An `await x.acquire()` registers the acquire first and
                # then lands here; only *other* awaits while held count.
                inner = node.value
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "acquire"
                ):
                    continue
                for receiver, acquire_node in held.items():
                    if receiver in reported:
                        continue
                    reported.add(receiver)
                    findings.append(
                        Finding(
                            path=ctx.module.display_path,
                            line=getattr(acquire_node, "lineno", fn.lineno),
                            col=getattr(acquire_node, "col_offset", 0) + 1,
                            rule=self.code,
                            message=(
                                f"`{receiver}.acquire()` held across an await "
                                f"in async `{fn.name}`; use `async with "
                                "lock:` so the release is exception-safe"
                            ),
                            call_path=(fn.qname,),
                        )
                    )
        return findings


def _is_lock_expr(
    expr: ast.expr, ctx: ModuleContext, fn: FunctionNode
) -> bool:
    """Resolved threading-lock, or name-heuristic lock (`…lock`)."""
    name = dotted_name(expr)
    if name is None:
        return False
    parts = name.split(".")
    if len(parts) == 1 and parts[0] in ctx.lock_globals:
        return True
    if (
        parts[0] == "self"
        and len(parts) == 2
        and fn.cls is not None
        and parts[1] in ctx.lock_attrs.get(fn.cls, frozenset())
    ):
        return True
    return _is_lockish_name(expr)


def _collect_await_events(
    node: ast.AST,
    ctx: ModuleContext,
    events: list[tuple[str, str, ast.AST]],
    in_locked: bool,
) -> None:
    """Linearise mutation/await events in source order, skipping
    ``async with <lock>:`` subtrees (their mutations are owned)."""
    if isinstance(node, ast.AsyncWith):
        locked = any(_is_lockish_name(item.context_expr) for item in node.items)
        for item in node.items:
            _collect_await_events(item.context_expr, ctx, events, in_locked)
        for stmt in node.body:
            _collect_await_events(stmt, ctx, events, in_locked or locked)
        return
    if isinstance(node, ast.Await):
        if not in_locked:
            events.append(("await", "", node))
        _collect_await_events(node.value, ctx, events, in_locked)
        return
    if isinstance(node, ast.Assign):
        _collect_await_events(node.value, ctx, events, in_locked)
        if not in_locked:
            for target in node.targets:
                key = _shared_target(target, ctx)
                if key is not None:
                    events.append(("mutate", key, target))
        return
    if isinstance(node, ast.AugAssign):
        _collect_await_events(node.value, ctx, events, in_locked)
        if not in_locked:
            key = _shared_target(node.target, ctx)
            if key is not None:
                events.append(("mutate", key, node.target))
        return
    for child in ast.iter_child_nodes(node):
        # Nested defs get their own analysis context; skip their bodies.
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        _collect_await_events(child, ctx, events, in_locked)


def _shared_target(target: ast.expr, ctx: ModuleContext) -> str | None:
    """`self.X` (and `self.X[...]`) or a module-global store target."""
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    name = dotted_name(node)
    if name is None:
        return None
    parts = name.split(".")
    if parts[0] == "self" and len(parts) == 2:
        return name
    if len(parts) >= 1 and parts[0] in ctx.globals:
        return parts[0]
    return None
