"""Text and JSON reporters for lint reports.

The text form is the classic one-finding-per-line ``path:line:col: CODE
message`` that editors and CI log scrapers understand.  The JSON form is
the machine-readable artifact CI uploads; its ``schema`` field gates
future shape changes (the linter practises what SIM007 preaches).
"""

from __future__ import annotations

import json

from repro.lint.engine import LintReport

#: Schema version of the JSON report format.  v2: findings carry
#: ``effects`` and ``call_path`` (the interprocedural pass, SIM009+).
REPORT_SCHEMA = 2


def render_text(report: LintReport) -> str:
    """Human-readable report; one line per finding plus a summary line."""
    lines = [finding.render() for finding in report.findings]
    if report.findings:
        by_rule = ", ".join(
            f"{rule}: {count}" for rule, count in report.counts_by_rule().items()
        )
        lines.append(
            f"{len(report.findings)} finding(s) in {report.files_checked} "
            f"file(s) ({by_rule}); {report.suppressed} suppressed"
        )
    else:
        lines.append(
            f"clean: {report.files_checked} file(s), 0 findings, "
            f"{report.suppressed} suppressed"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact)."""
    payload = {
        "schema": REPORT_SCHEMA,
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "clean": report.clean,
        "counts_by_rule": report.counts_by_rule(),
        "findings": [finding.as_dict() for finding in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
