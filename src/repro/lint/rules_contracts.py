"""Simulator-contract rules: SIM004 (hook gating), SIM005 (integer
counters), SIM006 (order-stable iteration), SIM008 (telemetry-handle
gating).

These encode contracts the runtime sanitizer cannot see: SIM004 is the
PR 2/4 zero-cost-when-off promise (instrumentation must cost exactly one
pointer test when disabled), SIM005 keeps `StatBlock` counters exact
integers (float accumulation drifts across summation orders), SIM006
forbids iteration orders that depend on hash seeding from feeding
anything observable, and SIM008 extends the SIM004 promise to the
service-telemetry handles (`telemetry.maybe*()` returns None when off).
"""

from __future__ import annotations

import ast
from typing import Callable

from repro.lint.findings import Finding
from repro.lint.rules import (
    Rule,
    call_args,
    dotted_name,
    guard_targets_negative,
    guard_targets_positive,
    register,
    terminates,
)
from repro.lint.source import SourceModule

# ---------------------------------------------------------------------------
# SIM004 — observe/verify hooks must sit behind one pointer test
# ---------------------------------------------------------------------------

#: Attribute segments that identify an instrumentation hook receiver.
_HOOK_SEGMENTS = frozenset({"observer", "checker"})


def _hook_receiver(recv: ast.expr) -> str | None:
    """The dotted receiver when it is an observe/verify hook, else None."""
    name = dotted_name(recv)
    if name is None:
        return None
    if _HOOK_SEGMENTS & set(name.split(".")):
        return name
    return None


def _guard_candidates(receiver: str) -> set[str]:
    """Expressions whose non-None-ness gates calls through ``receiver``.

    For ``self.observer.taxonomy`` both ``self.observer`` (the hook
    pointer) and the full receiver count as valid guards.
    """
    parts = receiver.split(".")
    candidates = {receiver}
    for i, part in enumerate(parts):
        if part in _HOOK_SEGMENTS:
            candidates.add(".".join(parts[: i + 1]))
    return candidates


class _GatingVisitor(ast.NodeVisitor):
    """Tracks which receivers are proven non-None on the current path.

    Shared by SIM004 and SIM008: ``matcher`` decides which call
    receivers are nullable handles (hook attributes vs. telemetry
    locals), the guard bookkeeping is identical.
    """

    def __init__(
        self,
        rule: Rule,
        module: SourceModule,
        matcher: Callable[[ast.expr], str | None] = _hook_receiver,
        message: str = "hook call through `{receiver}` is not gated by a "
        "pointer test (`if {receiver} is not None:`) — the "
        "off-path must cost exactly one attribute test",
    ) -> None:
        self.rule = rule
        self.module = module
        self.matcher = matcher
        self.message = message
        self.findings: list[Finding] = []
        self._guards: list[set[str]] = [set()]

    # -- guard bookkeeping ---------------------------------------------

    def _guarded(self, receiver: str) -> bool:
        candidates = _guard_candidates(receiver)
        return any(candidates & frame for frame in self._guards)

    def _with_guards(self, extra: set[str], nodes: list[ast.stmt]) -> None:
        self._guards.append(set(extra))
        self._visit_body(nodes)
        self._guards.pop()

    def _visit_body(self, body: list[ast.stmt]) -> None:
        """Visit a statement list, accumulating early-exit guards:
        ``if x is None: return`` proves ``x`` for the rest of the list,
        as does ``assert x is not None``."""
        self._guards.append(set())
        for stmt in body:
            self.visit(stmt)
            if (
                isinstance(stmt, ast.If)
                and not stmt.orelse
                and stmt.body
                and terminates(stmt.body[-1])
            ):
                self._guards[-1] |= guard_targets_negative(stmt.test)
            elif isinstance(stmt, ast.Assert):
                self._guards[-1] |= guard_targets_positive(stmt.test)
        self._guards.pop()

    # -- structural visits ---------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        self._with_guards(guard_targets_positive(node.test), node.body)
        self._with_guards(guard_targets_negative(node.test), node.orelse)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._with_guards(guard_targets_positive(node.test), node.body)
        self._with_guards(guard_targets_negative(node.test), node.orelse)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self.visit(node.test)
        self._guards.append(guard_targets_positive(node.test))
        self.visit(node.body)
        self._guards.pop()
        self._guards.append(guard_targets_negative(node.test))
        self.visit(node.orelse)
        self._guards.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function(node)

    def _function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        # A fresh function body starts with no path guards.
        outer = self._guards
        self._guards = [set()]
        self._visit_body(node.body)
        self._guards = outer

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        # `x is not None and x.emit(...)` — later operands of an `and` are
        # guarded by the earlier ones.
        if isinstance(node.op, ast.And):
            acquired: set[str] = set()
            for value in node.values:
                self._guards.append(set(acquired))
                self.visit(value)
                self._guards.pop()
                acquired |= guard_targets_positive(value)
        else:
            self.generic_visit(node)

    # -- the check ------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            receiver = self.matcher(node.func.value)
            if receiver is not None and not self._guarded(receiver):
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        self.message.format(receiver=receiver),
                    )
                )
        self.generic_visit(node)


@register
class UngatedHookRule(Rule):
    code = "SIM004"
    title = "observe/verify hook calls must be gated by one pointer test"
    rationale = """\
The observability and sanitizer layers promise zero cost when off: every
component holds `self.observer = None` / `self.checker = None` and each
emit site pays exactly one pointer test.  An ungated call crashes when
the layer is off (`None.emit`), and a *clever* gate (walrus tricks,
try/except AttributeError) breaks the one-pointer-test cost model that
the PR 3 performance gate assumes.  Calls through any `observer`/
`checker` receiver in the pipeline packages (`repro.core`,
`repro.frontend`, `repro.caches`) must appear under an
`if <receiver> is not None:` (or an equivalent early-exit/`and` guard)."""
    bad_example = """\
class FTQ:
    def push(self, block) -> None:
        self.observer.emit("ftq_enqueue", count=block.count)
"""
    good_example = """\
class FTQ:
    def push(self, block) -> None:
        observer = self.observer
        if observer is not None:
            observer.emit("ftq_enqueue", count=block.count)
"""

    #: Package prefixes whose hook sites the rule audits.
    SCOPES = ("repro.core", "repro.frontend", "repro.caches")

    def check(self, module: SourceModule) -> list[Finding]:
        if not module.module.startswith(self.SCOPES):
            return []
        visitor = _GatingVisitor(self, module)
        visitor._visit_body(list(module.tree.body))
        return visitor.findings


# ---------------------------------------------------------------------------
# SIM008 — telemetry maybe-handles must sit behind one None test
# ---------------------------------------------------------------------------

#: The nullable-handle factories of ``repro.observe.telemetry``.
_TELEMETRY_FACTORIES = frozenset({"maybe", "maybe_spans", "maybe_recorder"})


def _telemetry_handle_names(tree: ast.AST) -> set[str]:
    """Names assigned from a ``telemetry.maybe*()`` call, module-wide.

    Scope-insensitive on purpose: in this codebase the handle names
    (``tel``/``sink``/``rec``) are conventional, and treating them as
    tainted everywhere keeps the rule simple while still proving every
    real site.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        called = dotted_name(node.value.func)
        if called is None or called.split(".")[-1] not in _TELEMETRY_FACTORIES:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


@register
class UngatedTelemetryRule(Rule):
    code = "SIM008"
    title = "telemetry maybe-handles must be gated by one None test"
    rationale = """\
`repro.observe.telemetry.maybe()` / `maybe_spans()` / `maybe_recorder()`
return None whenever `REPRO_SIM_TELEMETRY` is off — that None *is* the
zero-cost-when-off mechanism, exactly like the SIM004 observer/checker
pointers.  A method call through an unguarded handle crashes every
default-configuration run (`None.counter`), and wrapping it in
try/except instead of a None test hides the cost model the perf gate
assumes.  Every call through a maybe-assigned handle in the service
layers (`repro.serve`, `repro.analysis`, `repro.core`) must appear
under `if <handle> is not None:` (or an equivalent early-exit/`and`/
conditional-expression guard)."""
    bad_example = """\
def record_hit(tier: str) -> None:
    tel = telemetry.maybe()
    tel.counter("repro_cache_hits_total", "Cache hits.", labels=("tier",)).inc(
        tier=tier
    )
"""
    good_example = """\
def record_hit(tier: str) -> None:
    tel = telemetry.maybe()
    if tel is not None:
        tel.counter(
            "repro_cache_hits_total", "Cache hits.", labels=("tier",)
        ).inc(tier=tier)
"""

    #: Package prefixes whose telemetry sites the rule audits.
    SCOPES = ("repro.serve", "repro.analysis", "repro.core")
    #: The telemetry package itself manages its own internals.
    SKIP = ("repro.observe.telemetry",)

    def check(self, module: SourceModule) -> list[Finding]:
        if not module.module.startswith(self.SCOPES):
            return []
        if module.module.startswith(self.SKIP):
            return []
        handles = _telemetry_handle_names(module.tree)
        if not handles:
            return []

        def matcher(recv: ast.expr) -> str | None:
            name = dotted_name(recv)
            return name if name in handles else None

        visitor = _GatingVisitor(
            self,
            module,
            matcher=matcher,
            message="call through telemetry handle `{receiver}` is not gated "
            "by a None test (`if {receiver} is not None:`) — maybe*() "
            "returns None when REPRO_SIM_TELEMETRY is off",
        )
        visitor._visit_body(list(module.tree.body))
        return visitor.findings


# ---------------------------------------------------------------------------
# SIM005 — StatBlock counters stay integers
# ---------------------------------------------------------------------------


def _is_floatish(node: ast.expr) -> bool:
    """Conservative: expressions that *definitely* produce a float."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("float", "percent", "per_kilo", "amean", "geomean")
    return False


def _is_stats_receiver(recv: ast.expr) -> bool:
    name = dotted_name(recv)
    if name is None:
        return False
    last = name.split(".")[-1]
    return last in ("stats", "_stats") or last.endswith("_stats")


@register
class FloatCounterRule(Rule):
    code = "SIM005"
    title = "StatBlock counters must stay integers"
    rationale = """\
`StatBlock` counters are exact event counts; every consumer (the warm-up
window differencing, the cache envelope, golden-stat checksums, interval
deltas) assumes integer semantics.  A float slipped into `add`/`set`
accumulates rounding error whose value depends on summation order, which
idle-skip and the parallel engine both change — the bit-identity
contracts then fail unreproducibly.  Derived ratios belong in reporting
code (`SimResult` properties), never in the counter store."""
    bad_example = """\
class Fetch:
    def tick(self, served: int, asked: int) -> None:
        self.stats.add("service_ratio", served / asked)
"""
    good_example = """\
class Fetch:
    def tick(self, served: int, asked: int) -> None:
        self.stats.add("uops_served", served)
        self.stats.add("uops_asked", asked)  # ratio computed at report time
"""

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in ("add", "set"):
                    continue
                if not _is_stats_receiver(node.func.value):
                    continue
                for arg in call_args(node)[1:]:
                    if _is_floatish(arg):
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"float-valued `{node.func.attr}` into a StatBlock "
                                "counter; counters are exact integers — move the "
                                "ratio to reporting code",
                            )
                        )
            elif isinstance(node, ast.ClassDef) and node.name == "StatBlock":
                findings.extend(self._check_statblock_def(module, node))
        return findings

    def _check_statblock_def(
        self, module: SourceModule, node: ast.ClassDef
    ) -> list[Finding]:
        """Inside the StatBlock definition itself: counter storage and the
        `add`/`set` signatures must be int-typed."""
        findings: list[Finding] = []
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.AnnAssign) and "float" in ast.unparse(
                stmt.annotation
            ):
                findings.append(
                    self.finding(
                        module, stmt, "float-typed field inside StatBlock"
                    )
                )
            elif isinstance(stmt, ast.arg) and stmt.annotation is not None:
                if ast.unparse(stmt.annotation) == "float":
                    findings.append(
                        self.finding(
                            module,
                            stmt,
                            f"StatBlock method parameter `{stmt.arg}` typed float; "
                            "counter amounts must be int",
                        )
                    )
        return findings


# ---------------------------------------------------------------------------
# SIM006 — iteration over sets must be order-stabilized
# ---------------------------------------------------------------------------

#: Callables that consume an iterable order-insensitively.
_ORDER_FREE_CALLS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset", "bool"}
)

#: Set methods that return another set.
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


class _SetTracker(ast.NodeVisitor):
    """Collects names/attributes that are statically known to hold sets."""

    def __init__(self) -> None:
        self.known: set[str] = set()

    def _note_target(self, target: ast.expr, is_set: bool) -> None:
        name = dotted_name(target)
        if name is None:
            return
        if is_set:
            self.known.add(name)
        else:
            self.known.discard(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_target(target, _is_set_expr(node.value, self.known))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        value_is_set = node.value is not None and _is_set_expr(node.value, self.known)
        self._note_target(node.target, _is_set_annotation(node.annotation) or value_is_set)
        self.generic_visit(node)

    def _visit_params(self, args: ast.arguments) -> None:
        # Parameters annotated `set[...]` are sets too — the rule's own
        # bad example is a set-typed parameter.
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None and _is_set_annotation(arg.annotation):
                self.known.add(arg.arg)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_params(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_params(node.args)
        self.generic_visit(node)


def _is_set_annotation(annotation: ast.expr) -> bool:
    text = ast.unparse(annotation)
    return text in ("set", "frozenset") or text.startswith(("set[", "frozenset["))


def _is_set_expr(node: ast.expr, known: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_RETURNING_METHODS
            and _is_set_expr(node.func.value, known)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, known) or _is_set_expr(node.right, known)
    name = dotted_name(node)
    return name is not None and name in known


@register
class UnstableSetIterRule(Rule):
    code = "SIM006"
    title = "iteration over a set must be order-stabilized"
    rationale = """\
Set (and hash-seed-dependent) iteration order varies between processes,
so any set iteration whose order can reach stats, emitted events, or a
tie-break (first match wins) silently breaks cross-process determinism —
the parallel engine runs jobs in worker processes and compares against
serial runs bit for bit.  Iterate `sorted(the_set)` (or keep an
insertion-ordered dict/list instead).  Order-insensitive reductions
(`len`/`sum`/`min`/`max`/`any`/`all`, membership tests, building another
set) are exempt because no ordering escapes them."""
    bad_example = """\
def drain(pending: set[int], stats) -> None:
    for line in pending:
        stats.add("drained")
        emit(line)  # emission order depends on the hash seed
"""
    good_example = """\
def drain(pending: set[int], stats) -> None:
    for line in sorted(pending):
        stats.add("drained")
        emit(line)
"""

    def check(self, module: SourceModule) -> list[Finding]:
        tracker = _SetTracker()
        tracker.visit(module.tree)
        known = tracker.known
        findings: list[Finding] = []

        def flag(iter_expr: ast.expr, context: str) -> None:
            if _is_set_expr(iter_expr, known):
                findings.append(
                    self.finding(
                        module,
                        iter_expr,
                        f"{context} iterates a set in hash order; wrap it in "
                        "sorted(...) or use an insertion-ordered structure",
                    )
                )

        # A genexp consumed whole by an order-free reduction leaks no
        # ordering: `any(f(x) for x in someset)` is fine.
        order_free_genexps: set[int] = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_FREE_CALLS
            ):
                for arg in node.args:
                    if isinstance(arg, ast.GeneratorExp):
                        order_free_genexps.add(id(arg))

        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                flag(node.iter, "for-loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                # A SetComp output is itself unordered — exempt.
                if id(node) in order_free_genexps:
                    continue
                for comp in node.generators:
                    flag(comp.iter, "comprehension")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name):
                    if func.id in _ORDER_FREE_CALLS:
                        continue
                    if func.id in ("list", "tuple", "iter", "enumerate") and node.args:
                        flag(node.args[0], f"{func.id}(...)")
                elif isinstance(func, ast.Attribute) and func.attr == "join":
                    if node.args:
                        flag(node.args[0], "str.join(...)")
        return findings
