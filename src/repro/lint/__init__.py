"""repro.lint — simulator-aware static analysis.

A dependency-free (stdlib ``ast``) lint pass enforcing the contracts the
simulator's correctness rests on: seeded randomness, no wall-clock
nondeterminism, call-time environment reads, zero-cost-when-off hook
gating, integer counters, order-stable iteration, and cache-schema
versioning.  Run it via ``repro lint src/`` or programmatically::

    from repro.lint import LintEngine
    report = LintEngine().lint_paths([Path("src")])
"""

from repro.lint.engine import (
    DEFAULT_SCHEMA_PATH,
    LintEngine,
    LintInternalError,
    LintReport,
)
from repro.lint.findings import Finding, Suppressions, parse_suppressions
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import RULES, ProjectRule, Rule
from repro.lint.source import SourceModule, iter_source_files, load_module, module_name

__all__ = [
    "DEFAULT_SCHEMA_PATH",
    "Finding",
    "LintEngine",
    "LintInternalError",
    "LintReport",
    "ProjectRule",
    "RULES",
    "Rule",
    "SourceModule",
    "Suppressions",
    "iter_source_files",
    "load_module",
    "module_name",
    "parse_suppressions",
    "render_json",
    "render_text",
]
