"""repro.lint — simulator-aware static analysis.

A dependency-free (stdlib ``ast``) lint pass enforcing the contracts the
simulator's correctness rests on: seeded randomness, no wall-clock
nondeterminism, call-time environment reads, zero-cost-when-off hook
gating, integer counters, order-stable iteration, and cache-schema
versioning.  On top of the per-file rules sits an interprocedural pass:
a project call graph (``repro.lint.callgraph``) and a fixed-point effect
inference (``repro.lint.effects``) that together power the async- and
process-boundary safety rules SIM009–SIM013 and the indirect arms of
SIM002/SIM003.  Run it via ``repro lint src/`` or programmatically::

    from repro.lint import LintEngine
    report = LintEngine().lint_paths([Path("src")])
"""

from repro.lint.callgraph import CALLGRAPH_SCHEMA, CallEdge, CallGraph, build_callgraph
from repro.lint.effects import (
    EFFECTS,
    EffectAnalysis,
    EffectSite,
    ProjectAnalysis,
    build_effects,
)
from repro.lint.engine import (
    DEFAULT_SCHEMA_PATH,
    LintEngine,
    LintInternalError,
    LintReport,
)
from repro.lint.findings import Finding, Suppressions, parse_suppressions
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import RULES, ProjectRule, Rule
from repro.lint.source import SourceModule, iter_source_files, load_module, module_name

__all__ = [
    "CALLGRAPH_SCHEMA",
    "CallEdge",
    "CallGraph",
    "DEFAULT_SCHEMA_PATH",
    "EFFECTS",
    "EffectAnalysis",
    "EffectSite",
    "Finding",
    "LintEngine",
    "LintInternalError",
    "LintReport",
    "ProjectAnalysis",
    "ProjectRule",
    "RULES",
    "Rule",
    "SourceModule",
    "Suppressions",
    "build_callgraph",
    "build_effects",
    "iter_source_files",
    "load_module",
    "module_name",
    "parse_suppressions",
    "render_json",
    "render_text",
]
