"""Fixed-point effect inference over the project call graph.

Each function gets a set of *effects* — observable behaviours that the
repo's cross-module contracts care about:

* ``wall-clock``      — reads host time (`time.time`, `datetime.now`, …)
* ``unseeded-rng``    — draws from process-global RNG state
* ``env-read``        — reads `os.environ` / `os.getenv`
* ``blocking-io``     — file/socket/subprocess work or `time.sleep`
* ``global-mutation`` — mutates module-level state
* ``unpicklable-capture`` — constructs objects that cannot cross a
  `ProcessPoolExecutor` boundary (open handles, locks, asyncio
  primitives, telemetry registries)

plus one auxiliary tag, ``thread-lock-acquire``, for `threading` lock
acquisition (consumed by SIM010; kept out of the headline lattice).

Effects start at *intrinsic sites* (syntactic evidence inside a function
body) and propagate caller-ward along call edges to a fixed point.  Two
suppression mechanisms cut the flow, both spelled with the existing
``# lint-ok:`` comment so the audit story stays uniform:

* a suppressed intrinsic site (e.g. the parallel engine's audited
  ``# lint-ok: SIM002`` timing reads) contributes **no** effect — an
  audited read must not poison every transitive caller;
* a suppression on a *call line* cuts the mapped effects across that
  edge only (per-edge suppression), for the rare caller that has its own
  reason the callee's effect does not apply to it.

The effect → rule-code map (:data:`CUT_CODES`) defines which codes cut
which effect.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

from repro.lint.callgraph import (
    CallEdge,
    CallGraph,
    FunctionNode,
    build_callgraph,
    iter_import_time_nodes,
)
from repro.lint.rules_determinism import (
    _DATETIME_FNS,
    _GLOBAL_RANDOM_FNS,
    _NUMPY_RANDOM_OK,
    _TIME_FNS,
)
from repro.lint.source import SourceModule

__all__ = [
    "EFFECTS",
    "CUT_CODES",
    "WALL_CLOCK",
    "UNSEEDED_RNG",
    "ENV_READ",
    "BLOCKING_IO",
    "GLOBAL_MUTATION",
    "UNPICKLABLE_CAPTURE",
    "THREAD_LOCK_ACQUIRE",
    "EffectSite",
    "EffectAnalysis",
    "ProjectAnalysis",
    "build_effects",
    "external_name",
]

WALL_CLOCK = "wall-clock"
UNSEEDED_RNG = "unseeded-rng"
ENV_READ = "env-read"
BLOCKING_IO = "blocking-io"
GLOBAL_MUTATION = "global-mutation"
UNPICKLABLE_CAPTURE = "unpicklable-capture"
THREAD_LOCK_ACQUIRE = "thread-lock-acquire"

#: The published effect lattice (the auxiliary lock tag rides along in
#: the artifact but is not part of the headline six).
EFFECTS: tuple[str, ...] = (
    WALL_CLOCK,
    UNSEEDED_RNG,
    ENV_READ,
    BLOCKING_IO,
    GLOBAL_MUTATION,
    UNPICKLABLE_CAPTURE,
)

#: Rule codes whose ``# lint-ok:`` suppression cuts each effect — at an
#: intrinsic site (audited leaf) or on a call line (per-edge cut).
CUT_CODES: dict[str, frozenset[str]] = {
    WALL_CLOCK: frozenset({"SIM002", "SIM013"}),
    UNSEEDED_RNG: frozenset({"SIM001", "SIM013"}),
    ENV_READ: frozenset({"SIM003"}),
    BLOCKING_IO: frozenset({"SIM009"}),
    GLOBAL_MUTATION: frozenset({"SIM010"}),
    UNPICKLABLE_CAPTURE: frozenset({"SIM012"}),
    THREAD_LOCK_ACQUIRE: frozenset({"SIM010"}),
}

#: Dotted call targets with blocking-io effect.  Deliberately *not*
#: ``.acquire`` (lock discipline is SIM010/SIM011's domain, and listing
#: it here would double-report every lock as SIM009 too).
_BLOCKING_CALLS = frozenset(
    {
        "open",
        "input",
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.socket",
        "socket.create_connection",
        "os.replace",
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.fdopen",
        "os.makedirs",
        "os.listdir",
        "os.scandir",
        "os.stat",
        "shutil.rmtree",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.move",
        "gzip.open",
        "lzma.open",
        "bz2.open",
        "urllib.request.urlopen",
    }
)

#: Method names that mean filesystem traffic on a ``Path``-like
#: receiver the resolver cannot type.  Chosen to be distinctive; generic
#: ``.read()`` / ``.write()`` are excluded (too many in-memory lookalikes).
_BLOCKING_METHODS = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "mkdir",
        "rmdir",
        "touch",
        "rglob",
        "iterdir",
    }
)

#: Constructors whose product cannot cross a pickle boundary.
_UNPICKLABLE_CALLS = frozenset(
    {
        "open",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "asyncio.Lock",
        "asyncio.Event",
        "asyncio.Condition",
        "asyncio.Queue",
        "asyncio.Semaphore",
        "asyncio.BoundedSemaphore",
        "socket.socket",
        "socket.create_connection",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
    }
)

#: Telemetry factories: their handles wrap registries/deques/sinks that
#: must never ride into a worker payload (docs/TELEMETRY.md).
_TELEMETRY_FACTORY_PREFIX = "repro.observe.telemetry"
_TELEMETRY_FACTORIES = frozenset({"maybe", "maybe_spans", "maybe_recorder"})

#: ``threading`` constructors that make a name "a thread lock".
_THREAD_LOCK_CTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

#: In-place mutators: calling one on module-level state is a mutation.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "extend",
        "update",
        "clear",
        "pop",
        "popitem",
        "remove",
        "discard",
        "setdefault",
        "insert",
    }
)


def external_name(name: str, bindings: dict[str, str]) -> str:
    """Expand the first segment of ``name`` through import bindings, so
    ``np.random.rand`` → ``numpy.random.rand`` and a bare ``perf_counter``
    (from-imported) → ``time.perf_counter``."""
    root, _, rest = name.partition(".")
    if root in bindings:
        expanded = bindings[root]
        return f"{expanded}.{rest}" if rest else expanded
    return name


@dataclass(frozen=True)
class EffectSite:
    """Syntactic evidence of one effect inside one function."""

    effect: str
    qname: str
    line: int
    col: int
    detail: str


# ---------------------------------------------------------------------------
# Per-module context shared by the intrinsic visitors
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class ModuleContext:
    """Module facts the intrinsic scan and the async rules both need."""

    module: SourceModule
    bindings: dict[str, str]
    #: Names assigned at module scope (mutation targets).
    globals: frozenset[str]
    #: Module-level names bound to ``threading`` lock objects.
    lock_globals: frozenset[str]
    #: Per class name: ``self.X`` attrs bound to ``threading`` locks.
    lock_attrs: dict[str, frozenset[str]]


def _module_context(module: SourceModule, bindings: dict[str, str]) -> ModuleContext:
    global_names: set[str] = set()
    lock_globals: set[str] = set()
    lock_attrs: dict[str, frozenset[str]] = {}
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name):
                global_names.add(target.id)
                if value is not None and _is_thread_lock_ctor(value, bindings):
                    lock_globals.add(target.id)
        if isinstance(stmt, ast.ClassDef):
            attrs: set[str] = set()
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and isinstance(node.targets[0].value, ast.Name)
                    and node.targets[0].value.id == "self"
                    and _is_thread_lock_ctor(node.value, bindings)
                ):
                    attrs.add(node.targets[0].attr)
            lock_attrs[stmt.name] = frozenset(attrs)
    return ModuleContext(
        module=module,
        bindings=bindings,
        globals=frozenset(global_names),
        lock_globals=frozenset(lock_globals),
        lock_attrs=lock_attrs,
    )


def _is_thread_lock_ctor(expr: ast.expr, bindings: dict[str, str]) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    name = _call_name(expr)
    if name is None:
        return False
    return external_name(name, bindings) in _THREAD_LOCK_CTORS


def _call_name(call: ast.Call) -> str | None:
    from repro.lint.rules import dotted_name

    return dotted_name(call.func)


# ---------------------------------------------------------------------------
# Intrinsic effect scan
# ---------------------------------------------------------------------------


class _IntrinsicVisitor(ast.NodeVisitor):
    """Collects effect sites from one function body.

    Nested defs and lambdas are visited too (they are attributed to the
    enclosing indexed function, matching the call-graph convention).
    """

    def __init__(self, ctx: ModuleContext, fn: FunctionNode) -> None:
        self.ctx = ctx
        self.fn = fn
        self.sites: list[EffectSite] = []
        self.local_names: set[str] = set()
        self.local_locks: set[str] = set()
        self.declared_global: set[str] = set()

    # -- bookkeeping ----------------------------------------------------

    def seed_locals(self, node: ast.AST) -> None:
        """Flow-insensitive local-name scan: params and bare assignments
        shadow module globals unless declared ``global``."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                args.posonlyargs
                + args.args
                + args.kwonlyargs
                + [a for a in (args.vararg, args.kwarg) if a is not None]
            ):
                self.local_names.add(arg.arg)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                self.declared_global.update(sub.names)
            elif isinstance(sub, ast.Assign):
                for target in sub.targets:
                    self._seed_target(target, sub.value)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                self._seed_target(sub.target, getattr(sub, "value", None))
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                self._seed_target(sub.target, None)
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    if item.optional_vars is not None:
                        self._seed_target(item.optional_vars, None)
            elif isinstance(sub, ast.comprehension):
                self._seed_target(sub.target, None)

    def _seed_target(self, target: ast.expr, value: ast.expr | None) -> None:
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                self._seed_target(element, None)
        elif isinstance(target, ast.Name):
            self.local_names.add(target.id)
            if value is not None and _is_thread_lock_ctor(value, self.ctx.bindings):
                self.local_locks.add(target.id)

    def _is_module_global(self, name: str) -> bool:
        if name in self.declared_global:
            return True
        return name in self.ctx.globals and name not in self.local_names

    def _is_thread_lock(self, expr: ast.expr) -> bool:
        from repro.lint.rules import dotted_name

        name = dotted_name(expr)
        if name is None:
            return False
        parts = name.split(".")
        if len(parts) == 1:
            return parts[0] in self.ctx.lock_globals or parts[0] in self.local_locks
        if parts[0] == "self" and len(parts) == 2 and self.fn.cls is not None:
            return parts[1] in self.ctx.lock_attrs.get(self.fn.cls, frozenset())
        return False

    def _emit(self, effect: str, node: ast.AST, detail: str) -> None:
        line = getattr(node, "lineno", 1)
        suppressions = self.ctx.module.suppressions
        if any(suppressions.covers_site(line, code) for code in CUT_CODES[effect]):
            return
        self.sites.append(
            EffectSite(
                effect=effect,
                qname=self.fn.qname,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                detail=detail,
            )
        )

    # -- the scan -------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name is not None:
            resolved = external_name(name, self.ctx.bindings)
            self._classify_call(node, name, resolved)
        self.generic_visit(node)

    def _classify_call(self, node: ast.Call, name: str, resolved: str) -> None:
        parts = resolved.split(".")
        if resolved in _BLOCKING_CALLS:
            self._emit(BLOCKING_IO, node, f"{name}()")
        elif len(parts) >= 2 and parts[-1] in _BLOCKING_METHODS:
            self._emit(BLOCKING_IO, node, f"{name}()")
        if (
            (parts[0] == "time" and len(parts) == 2 and parts[1] in _TIME_FNS)
            or any(resolved.endswith(suffix) for suffix in _DATETIME_FNS)
        ):
            self._emit(WALL_CLOCK, node, f"{name}()")
        if (
            parts[0] == "random"
            and len(parts) == 2
            and parts[1] in _GLOBAL_RANDOM_FNS
        ) or (
            len(parts) >= 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] not in _NUMPY_RANDOM_OK
        ):
            self._emit(UNSEEDED_RNG, node, f"{name}()")
        if resolved == "os.getenv" or resolved.startswith("os.environ."):
            self._emit(ENV_READ, node, f"{name}()")
        if resolved in _UNPICKLABLE_CALLS:
            self._emit(UNPICKLABLE_CAPTURE, node, f"{name}()")
        elif (
            resolved.startswith(_TELEMETRY_FACTORY_PREFIX)
            and parts[-1] in _TELEMETRY_FACTORIES
        ):
            self._emit(UNPICKLABLE_CAPTURE, node, f"{name}()")
        if resolved.endswith(".acquire") and self._is_thread_lock(
            node.func.value if isinstance(node.func, ast.Attribute) else node.func
        ):
            self._emit(THREAD_LOCK_ACQUIRE, node, f"{name}()")
        # Mutator method on module-level state: `_CACHE.clear()`, ...
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
            and self._is_module_global(node.func.value.id)
        ):
            self._emit(GLOBAL_MUTATION, node, f"{name}()")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        from repro.lint.rules import dotted_name

        name = dotted_name(node)
        if name is not None and external_name(name, self.ctx.bindings) == "os.environ":
            self._emit(ENV_READ, node, "os.environ")
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if self._is_thread_lock(item.context_expr):
                self._emit(
                    THREAD_LOCK_ACQUIRE,
                    item.context_expr,
                    "with <threading lock>",
                )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node)
        self.generic_visit(node)

    def _check_store(self, target: ast.expr, node: ast.AST) -> None:
        # `GLOBAL[k] = v`, `GLOBAL.attr = v`, and (declared-global) `X = v`.
        root = target
        dotted = False
        while isinstance(root, (ast.Subscript, ast.Attribute)):
            root = root.value
            dotted = True
        if not isinstance(root, ast.Name):
            return
        if dotted:
            if self._is_module_global(root.id):
                self._emit(GLOBAL_MUTATION, node, f"store into `{root.id}`")
        elif root.id in self.declared_global:
            self._emit(GLOBAL_MUTATION, node, f"global `{root.id}` rebound")


# ---------------------------------------------------------------------------
# Propagation
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class EffectAnalysis:
    """Intrinsic sites plus the propagated fixed point."""

    graph: CallGraph
    contexts: dict[str, ModuleContext]
    intrinsic: dict[str, list[EffectSite]] = field(default_factory=dict)
    effects: dict[str, frozenset[str]] = field(default_factory=dict)

    def effects_of(self, qname: str) -> frozenset[str]:
        return self.effects.get(qname, frozenset())

    def edge_effects(self, edge: CallEdge) -> frozenset[str]:
        """Callee effects that survive this edge's per-edge cuts."""
        callee = self.effects_of(edge.callee)
        if not callee:
            return callee
        module = self.graph.module_of(edge.caller)
        if module is None:
            return callee
        kept = {
            effect
            for effect in callee
            if not any(
                module.suppressions.covers_site(edge.line, code)
                for code in CUT_CODES[effect]
            )
        }
        return frozenset(kept)

    def trace(self, qname: str, effect: str) -> tuple[list[str], EffectSite | None]:
        """Shortest call path ``qname → … → leaf`` ending at an intrinsic
        site of ``effect`` (respecting per-edge cuts).  Deterministic:
        edges explored in source order."""
        seen = {qname}
        queue: deque[list[str]] = deque([[qname]])
        while queue:
            path = queue.popleft()
            current = path[-1]
            for site in self.intrinsic.get(current, []):
                if site.effect == effect:
                    return path, site
            for edge in sorted(
                self.graph.out_edges(current), key=lambda e: (e.line, e.col)
            ):
                if edge.callee in seen:
                    continue
                if effect not in self.edge_effects(edge):
                    continue
                seen.add(edge.callee)
                queue.append(path + [edge.callee])
        return [qname], None


def build_effects(graph: CallGraph) -> EffectAnalysis:
    contexts = {
        name: _module_context(module, graph.bindings[name])
        for name, module in graph.modules.items()
    }
    analysis = EffectAnalysis(graph=graph, contexts=contexts)

    for fn in graph.functions.values():
        ctx = contexts[fn.module]
        visitor = _IntrinsicVisitor(ctx, fn)
        if fn.is_module_body:
            roots = iter_import_time_nodes(ctx.module.tree)
        else:
            roots = [fn.node]
            visitor.seed_locals(fn.node)
        for root in roots:
            visitor.visit(root)
        analysis.intrinsic[fn.qname] = visitor.sites
        analysis.effects[fn.qname] = frozenset(s.effect for s in visitor.sites)

    # Caller-ward worklist propagation with per-edge cuts.
    callers_of: dict[str, list[CallEdge]] = {}
    for edge in graph.edges:
        callers_of.setdefault(edge.callee, []).append(edge)
    worklist: deque[str] = deque(analysis.effects)
    while worklist:
        callee = worklist.popleft()
        for edge in callers_of.get(callee, []):
            flowing = analysis.edge_effects(edge)
            current = analysis.effects.get(edge.caller, frozenset())
            merged = current | flowing
            if merged != current:
                analysis.effects[edge.caller] = merged
                worklist.append(edge.caller)
    return analysis


# ---------------------------------------------------------------------------
# The engine-facing bundle and the JSON artifact
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class ProjectAnalysis:
    """Call graph + effect fixed point for one lint run."""

    graph: CallGraph
    effects: EffectAnalysis

    @staticmethod
    def build(modules: dict[str, SourceModule]) -> "ProjectAnalysis":
        graph = build_callgraph(modules)
        return ProjectAnalysis(graph=graph, effects=build_effects(graph))

    def to_payload(self) -> dict[str, object]:
        payload = self.graph.to_payload()
        functions = payload["functions"]
        assert isinstance(functions, list)
        for entry in functions:
            assert isinstance(entry, dict)
            qname = entry["qname"]
            assert isinstance(qname, str)
            entry["effects"] = sorted(self.effects.effects_of(qname))
            entry["intrinsic"] = [
                {
                    "effect": site.effect,
                    "line": site.line,
                    "detail": site.detail,
                }
                for site in self.effects.intrinsic.get(qname, [])
            ]
        return payload
