"""Source-file loading for :mod:`repro.lint`: discovery, parsing, module
naming, and the parsed-module record every rule consumes.

Module names are derived from the path: everything from the last ``repro``
path component down (``src/repro/core/ucp.py`` → ``repro.core.ucp``), so
scoped rules (SIM002's profiling exemption, SIM004's pipeline-package
scope) work identically on the real tree and on test fixtures laid out
under a temporary ``src/repro/...`` directory.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Suppressions, parse_suppressions


@dataclass
class SourceModule:
    """One parsed source file plus everything rules need to know about it."""

    path: Path
    module: str
    text: str
    tree: ast.Module
    suppressions: Suppressions = field(
        default_factory=lambda: Suppressions(by_line={}, whole_file=frozenset())
    )

    @property
    def display_path(self) -> str:
        """Path as reported in findings (relative to CWD when possible)."""
        try:
            return self.path.relative_to(Path.cwd()).as_posix()
        except ValueError:
            return self.path.as_posix()


def module_name(path: Path) -> str:
    """Dotted module name for ``path`` (see module docstring)."""
    parts = list(path.parts)
    stem = path.stem
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        dotted = parts[anchor:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


def load_module(path: Path) -> SourceModule:
    """Parse ``path``; raises :class:`SyntaxError` on unparsable source."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return SourceModule(
        path=path,
        module=module_name(path),
        text=text,
        tree=tree,
        suppressions=parse_suppressions(text),
    )


def iter_source_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    Sorting makes the run order (and therefore the report order) stable
    regardless of filesystem enumeration order.
    """
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if "__pycache__" in file.parts:
                    continue
                seen.setdefault(file.resolve())
        else:
            seen.setdefault(path.resolve())
    return sorted(seen)
