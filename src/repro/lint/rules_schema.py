"""SIM007 — cache-payload shape changes require a ``CACHE_VERSION`` bump.

The result cache pickles ``(config, SimResult.to_dict())`` under a
``CACHE_VERSION``-salted key.  If the payload shape changes while the
version stays put, old cache entries deserialize into the new code with
missing/renamed fields — the PR 1 corruption class the checksummed
envelope cannot catch, because the bytes are valid, just semantically
stale.  This rule extracts the shape *statically* (the ``to_dict`` key
sets of ``SimResult`` and ``StatBlock``, their ``SCHEMA`` numbers, and
``CACHE_VERSION`` itself) and compares it against a committed snapshot,
``src/repro/lint/cache_schema.json``.  Any drift fails the lint until the
snapshot is regenerated (``repro lint --write-schema``) — and
regenerating without bumping ``CACHE_VERSION`` when the shape moved is
still a finding, so the bump cannot be forgotten.
"""

from __future__ import annotations

import ast
import json
from typing import TYPE_CHECKING

from repro.lint.findings import Finding
from repro.lint.rules import ProjectRule, register
from repro.lint.source import SourceModule

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.engine import LintEngine

#: Snapshot file format version.
SNAPSHOT_SCHEMA = 1

#: Modules the shape is extracted from (all three must be in the run set
#: for the rule to apply).
RUNNER_MODULE = "repro.analysis.runner"
RESULT_MODULE = "repro.core.pipeline"
STATS_MODULE = "repro.common.stats"


class SchemaExtractionError(Exception):
    """The expected definitions were not found where the contract says."""


def _class_def(module: SourceModule, name: str) -> ast.ClassDef:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    raise SchemaExtractionError(f"class {name} not found in {module.module}")


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    raise SchemaExtractionError(f"method {cls.name}.{name} not found")


def _class_int(cls: ast.ClassDef, name: str) -> int:
    """A class-body ``NAME = <int literal>`` (e.g. ``SCHEMA = 1``)."""
    for node in cls.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    if isinstance(node.value, ast.Constant) and isinstance(
                        node.value.value, int
                    ):
                        return node.value.value
    raise SchemaExtractionError(f"{cls.name}.{name} int literal not found")


def _module_int(module: SourceModule, name: str) -> tuple[int, ast.AST]:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    if isinstance(node.value, ast.Constant) and isinstance(
                        node.value.value, int
                    ):
                        return node.value.value, node
    raise SchemaExtractionError(f"{module.module}.{name} int literal not found")


def _to_dict_keys(method: ast.FunctionDef) -> list[str]:
    """String keys of the dict literal(s) returned by a ``to_dict``."""
    keys: list[str] = []
    for node in ast.walk(method):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.append(key.value)
    if not keys:
        raise SchemaExtractionError(
            f"{method.name} does not return a literal dict — the payload "
            "shape must stay statically extractable"
        )
    return sorted(set(keys))


def extract_schema(modules: dict[str, SourceModule]) -> dict[str, object]:
    """Build the current shape description from the parsed run set."""
    runner = modules[RUNNER_MODULE]
    pipeline = modules[RESULT_MODULE]
    stats = modules[STATS_MODULE]
    cache_version, _node = _module_int(runner, "CACHE_VERSION")
    sim_result = _class_def(pipeline, "SimResult")
    stat_block = _class_def(stats, "StatBlock")
    return {
        "schema": SNAPSHOT_SCHEMA,
        "cache_version": cache_version,
        "simresult": {
            "schema": _class_int(sim_result, "SCHEMA"),
            "to_dict_keys": _to_dict_keys(_method(sim_result, "to_dict")),
        },
        "statblock": {
            "schema": _class_int(stat_block, "SCHEMA"),
            "to_dict_keys": _to_dict_keys(_method(stat_block, "to_dict")),
        },
    }


@register
class CacheSchemaRule(ProjectRule):
    code = "SIM007"
    title = "cache payload shape changes require a CACHE_VERSION bump"
    # The examples above are illustrative fragments, not a self-contained
    # module: the rule compares runner/result/stats modules against the
    # cache_schema.json snapshot, which no single scratch file can set up.
    selfchecked = False
    rationale = """\
The result cache stores `(config, SimResult.to_dict())` under keys salted
with `CACHE_VERSION`.  Changing the payload shape (`SimResult.to_dict`
keys, `StatBlock.to_dict` keys, or their `SCHEMA` numbers) without
bumping the version makes byte-valid but semantically stale entries
deserialize into new code — silent wrong results, the worst failure mode
a reproduction can have.  The shipped shape is snapshotted in
`src/repro/lint/cache_schema.json`; on any drift, bump `CACHE_VERSION`
in `repro.analysis.runner` and refresh the snapshot with
`repro lint --write-schema` (the snapshot diff then shows reviewers the
shape change and the bump side by side)."""
    bad_example = """\
# SimResult.to_dict grows a key...
return {"schema": self.SCHEMA, "name": self.name, "power_w": self.power_w}
# ...while repro/analysis/runner.py still says CACHE_VERSION = 7
"""
    good_example = """\
# repro/analysis/runner.py
CACHE_VERSION = 8  # payload gained power_w
# and `repro lint --write-schema` refreshed cache_schema.json
"""

    def check_project(
        self, modules: dict[str, SourceModule], engine: "LintEngine"
    ) -> list[Finding]:
        required = (RUNNER_MODULE, RESULT_MODULE, STATS_MODULE)
        if not all(name in modules for name in required):
            # Partial run (e.g. linting one file): contract not checkable.
            return []
        current = extract_schema(modules)
        snapshot_path = engine.schema_path
        if not snapshot_path.exists():
            runner = modules[RUNNER_MODULE]
            _version, node = _module_int(runner, "CACHE_VERSION")
            return [
                self.finding(
                    runner,
                    node,
                    f"no cache-schema snapshot at {snapshot_path}; create it "
                    "with `repro lint --write-schema`",
                )
            ]
        snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
        if current == snapshot:
            return []
        return self._diff_findings(modules, snapshot, current)

    def _diff_findings(
        self,
        modules: dict[str, SourceModule],
        snapshot: dict[str, object],
        current: dict[str, object],
    ) -> list[Finding]:
        findings: list[Finding] = []
        shape_moved = any(
            snapshot.get(part) != current.get(part) for part in ("simresult", "statblock")
        )
        version_moved = snapshot.get("cache_version") != current.get("cache_version")
        runner = modules[RUNNER_MODULE]
        _version, version_node = _module_int(runner, "CACHE_VERSION")
        if shape_moved and not version_moved:
            for part, module_name, cls, method in (
                ("simresult", RESULT_MODULE, "SimResult", "to_dict"),
                ("statblock", STATS_MODULE, "StatBlock", "to_dict"),
            ):
                if snapshot.get(part) == current.get(part):
                    continue
                module = modules[module_name]
                node = _method(_class_def(module, cls), method)
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{cls}.{method} payload shape changed but CACHE_VERSION "
                        f"is still {current.get('cache_version')} — bump it in "
                        f"{RUNNER_MODULE} and run `repro lint --write-schema`",
                    )
                )
        else:
            # Version bumped (with or without a shape change), or a
            # version-only edit: the committed snapshot is stale either way.
            findings.append(
                self.finding(
                    runner,
                    version_node,
                    "cache schema snapshot is stale "
                    f"(snapshot v{snapshot.get('cache_version')} vs source "
                    f"v{current.get('cache_version')}); refresh it with "
                    "`repro lint --write-schema` so the diff is reviewed",
                )
            )
        return findings
