"""Project-wide call graph over parsed :class:`SourceModule`s.

The interprocedural layer's substrate: every module-level function,
every method (class-scoped), and one synthetic ``<module>`` node per
module for import-time code, connected by *resolved* call edges.  Name
resolution is static and deliberately conservative:

* bare names resolve through the module's import bindings and its own
  top-level ``def``s;
* dotted names resolve through ``import x as y`` / ``from m import n``
  bindings into other modules in the run set;
* ``self.meth()`` resolves through the enclosing class and its
  statically known bases; ``self.attr.meth()`` resolves when ``attr`` is
  assigned (or annotated) with a project class anywhere in the class;
* locals and parameters typed by annotation or constructor assignment
  (``shard: WorkerShard``, ``sim = Simulator(...)``) resolve their
  method calls;
* everything else — dynamic dispatch through values the analysis cannot
  type, calls on call results, callables passed as arguments — produces
  **no** edge.  Unknown targets are assumed effect-free: the analysis
  under-approximates reachability rather than drowning the rules in
  false positives.  (Functions passed *by reference* — executor hops,
  callbacks — are likewise not edges, which is exactly what makes
  ``asyncio.to_thread(blocking_fn)`` the sanctioned escape hatch for
  SIM009.)

Nested ``def``s and lambdas are attributed to their enclosing named
function: defining a closure is treated as calling it, which
over-approximates effects in the safe direction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.rules import dotted_name
from repro.lint.source import SourceModule

__all__ = [
    "CALLGRAPH_SCHEMA",
    "MODULE_BODY",
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "FunctionNode",
    "build_callgraph",
]

#: Schema version of the ``--callgraph-out`` JSON artifact.
CALLGRAPH_SCHEMA = 1

#: Synthetic function name for a module's import-time body.
MODULE_BODY = "<module>"


@dataclass(eq=False)
class FunctionNode:
    """One analyzable function: a def, a method, or a module body."""

    qname: str
    module: str
    name: str
    cls: str | None
    lineno: int
    is_async: bool
    #: AST whose subtree (minus separately-indexed defs) is the body.
    node: ast.AST = field(repr=False)

    @property
    def is_module_body(self) -> bool:
        return self.name == MODULE_BODY


@dataclass(eq=False)
class ClassInfo:
    """One class definition plus everything edge resolution needs."""

    qname: str
    module: str
    name: str
    #: Raw base expressions, resolved lazily against import bindings.
    base_names: list[str]
    methods: dict[str, FunctionNode]
    #: ``self.X`` attributes whose assigned/annotated type is a project
    #: class (values are class qnames).
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: ``caller`` invokes ``callee``."""

    caller: str
    callee: str
    line: int
    col: int
    kind: str  # "direct" | "method" | "self" | "init"


class CallGraph:
    """Functions, classes, and resolved call edges of one run set."""

    def __init__(self, modules: dict[str, SourceModule]) -> None:
        self.modules = modules
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Import bindings per module: local name -> dotted target.
        self.bindings: dict[str, dict[str, str]] = {}
        self.edges: list[CallEdge] = []
        self.edges_by_caller: dict[str, list[CallEdge]] = {}

    # -- queries --------------------------------------------------------

    def out_edges(self, qname: str) -> list[CallEdge]:
        return self.edges_by_caller.get(qname, [])

    def module_of(self, qname: str) -> SourceModule | None:
        node = self.functions.get(qname)
        return None if node is None else self.modules.get(node.module)

    def resolve_method(self, class_qname: str, method: str) -> str | None:
        """Look ``method`` up on a class and (recursively) its bases."""
        seen: set[str] = set()
        stack = [class_qname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method].qname
            module_bindings = self.bindings.get(info.module, {})
            for base in info.base_names:
                resolved = _expand(base, module_bindings, info.module)
                if resolved is not None and resolved in self.classes:
                    stack.append(resolved)
        return None

    # -- export ---------------------------------------------------------

    def to_payload(self) -> dict[str, object]:
        """JSON-ready shape (effects are merged in by the effect pass)."""
        functions = [
            {
                "qname": node.qname,
                "module": node.module,
                "name": node.name,
                "class": node.cls,
                "line": node.lineno,
                "async": node.is_async,
            }
            for node in sorted(self.functions.values(), key=lambda n: n.qname)
        ]
        edges = [
            {
                "caller": edge.caller,
                "callee": edge.callee,
                "line": edge.line,
                "kind": edge.kind,
            }
            for edge in sorted(
                self.edges, key=lambda e: (e.caller, e.line, e.col, e.callee)
            )
        ]
        return {
            "schema": CALLGRAPH_SCHEMA,
            "functions": functions,
            "edges": edges,
        }


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


def build_callgraph(modules: dict[str, SourceModule]) -> CallGraph:
    graph = CallGraph(modules)
    for module in modules.values():
        graph.bindings[module.module] = _collect_bindings(module)
        _index_module(graph, module)
    for module in modules.values():
        _collect_attr_types(graph, module)
    for module in modules.values():
        _resolve_edges(graph, module)
    for edge in graph.edges:
        graph.edges_by_caller.setdefault(edge.caller, []).append(edge)
    return graph


def _collect_bindings(module: SourceModule) -> dict[str, str]:
    """Local name -> dotted target, from every import in the module."""
    bindings: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    bindings[alias.asname] = alias.name
                else:
                    bindings[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: anchor on this module's package.  A
                # package __init__ *is* its package; a plain module's
                # package is its parent.
                parts = module.module.split(".")
                if not module.path.name == "__init__.py":
                    parts = parts[:-1]
                parts = parts[: len(parts) - (node.level - 1)]
                base = ".".join(parts + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                bindings[alias.asname or alias.name] = target
    return bindings


def _index_module(graph: CallGraph, module: SourceModule) -> None:
    body_qname = f"{module.module}.{MODULE_BODY}"
    graph.functions[body_qname] = FunctionNode(
        qname=body_qname,
        module=module.module,
        name=MODULE_BODY,
        cls=None,
        lineno=1,
        is_async=False,
        node=module.tree,
    )
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{module.module}.{stmt.name}"
            graph.functions[qname] = FunctionNode(
                qname=qname,
                module=module.module,
                name=stmt.name,
                cls=None,
                lineno=stmt.lineno,
                is_async=isinstance(stmt, ast.AsyncFunctionDef),
                node=stmt,
            )
        elif isinstance(stmt, ast.ClassDef):
            class_qname = f"{module.module}.{stmt.name}"
            methods: dict[str, FunctionNode] = {}
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = f"{class_qname}.{item.name}"
                    node = FunctionNode(
                        qname=qname,
                        module=module.module,
                        name=item.name,
                        cls=stmt.name,
                        lineno=item.lineno,
                        is_async=isinstance(item, ast.AsyncFunctionDef),
                        node=item,
                    )
                    graph.functions[qname] = node
                    methods[item.name] = node
            bases = [
                name
                for base in stmt.bases
                if (name := dotted_name(base)) is not None
            ]
            graph.classes[class_qname] = ClassInfo(
                qname=class_qname,
                module=module.module,
                name=stmt.name,
                base_names=bases,
                methods=methods,
            )


def _expand(name: str, bindings: dict[str, str], module: str) -> str | None:
    """Expand a dotted name through import bindings to a full target."""
    parts = name.split(".")
    root = parts[0]
    if root in bindings:
        return ".".join([bindings[root]] + parts[1:])
    return None


def _annotation_class(
    expr: ast.expr | None, bindings: dict[str, str], graph: CallGraph, module: str
) -> str | None:
    """Class qname named by a type annotation, unwrapping ``X | None``."""
    if expr is None:
        return None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        return _annotation_class(
            expr.left, bindings, graph, module
        ) or _annotation_class(expr.right, bindings, graph, module)
    if isinstance(expr, ast.Subscript):  # Optional[X] / list[X]: use the head
        head = dotted_name(expr.value)
        if head in ("Optional",):
            inner = expr.slice
            if isinstance(inner, ast.expr):
                return _annotation_class(inner, bindings, graph, module)
        return None
    name = dotted_name(expr)
    if name is None:
        return None
    return _resolve_class_name(name, bindings, graph, module)


def _resolve_class_name(
    name: str, bindings: dict[str, str], graph: CallGraph, module: str
) -> str | None:
    """Resolve ``name`` (local or dotted) to a known class qname."""
    local = f"{module}.{name}"
    if local in graph.classes:
        return local
    expanded = _expand(name, bindings, module)
    if expanded is not None and expanded in graph.classes:
        return expanded
    return None


def _constructor_class(
    expr: ast.expr, bindings: dict[str, str], graph: CallGraph, module: str
) -> str | None:
    """Class qname when ``expr`` (or an ``or``-chain operand) constructs one."""
    if isinstance(expr, ast.BoolOp):
        for value in expr.values:
            found = _constructor_class(value, bindings, graph, module)
            if found is not None:
                return found
        return None
    if not isinstance(expr, ast.Call):
        return None
    name = dotted_name(expr.func)
    if name is None:
        return None
    return _resolve_class_name(name, bindings, graph, module)


def _collect_attr_types(graph: CallGraph, module: SourceModule) -> None:
    bindings = graph.bindings[module.module]
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        info = graph.classes.get(f"{module.module}.{stmt.name}")
        if info is None:
            continue
        for node in ast.walk(stmt):
            target: ast.expr | None = None
            type_qname: str | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                type_qname = _constructor_class(
                    node.value, bindings, graph, module.module
                )
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                type_qname = _annotation_class(
                    node.annotation, bindings, graph, module.module
                )
                if type_qname is None and node.value is not None:
                    type_qname = _constructor_class(
                        node.value, bindings, graph, module.module
                    )
            if target is None or type_qname is None:
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                info.attr_types.setdefault(target.attr, type_qname)


class _EdgeVisitor(ast.NodeVisitor):
    """Collects resolved call edges for one function body."""

    def __init__(
        self,
        graph: CallGraph,
        module: SourceModule,
        caller: FunctionNode,
        cls: ClassInfo | None,
    ) -> None:
        self.graph = graph
        self.module = module
        self.caller = caller
        self.cls = cls
        self.bindings = graph.bindings[module.module]
        #: Locals (params + assignments) typed to a project class.
        self.local_types: dict[str, str] = {}

    # -- local typing ---------------------------------------------------

    def seed_params(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            type_qname = _annotation_class(
                arg.annotation, self.bindings, self.graph, self.module.module
            )
            if type_qname is not None:
                self.local_types[arg.arg] = type_qname

    def visit_Assign(self, node: ast.Assign) -> None:
        type_qname = _constructor_class(
            node.value, self.bindings, self.graph, self.module.module
        )
        if type_qname is not None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.local_types[target.id] = type_qname
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            type_qname = _annotation_class(
                node.annotation, self.bindings, self.graph, self.module.module
            )
            if type_qname is None and node.value is not None:
                type_qname = _constructor_class(
                    node.value, self.bindings, self.graph, self.module.module
                )
            if type_qname is not None:
                self.local_types[node.target.id] = type_qname
        self.generic_visit(node)

    # -- the resolution -------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func)
        if resolved is not None:
            callee, kind = resolved
            self.graph.edges.append(
                CallEdge(
                    caller=self.caller.qname,
                    callee=callee,
                    line=node.lineno,
                    col=node.col_offset,
                    kind=kind,
                )
            )
        self.generic_visit(node)

    def _resolve(self, func: ast.expr) -> tuple[str, str] | None:
        name = dotted_name(func)
        if name is None:
            return None
        parts = name.split(".")
        module = self.module.module

        # self.meth() / cls.meth() — class-scoped lookup through bases.
        if parts[0] in ("self", "cls") and self.cls is not None:
            if len(parts) == 2:
                target = self.graph.resolve_method(self.cls.qname, parts[1])
                return None if target is None else (target, "self")
            if len(parts) == 3:
                attr_type = self.cls.attr_types.get(parts[1])
                if attr_type is not None:
                    target = self.graph.resolve_method(attr_type, parts[2])
                    return None if target is None else (target, "method")
            return None

        # Typed local / parameter: shard.submit(), sim.run(), ...
        if len(parts) == 2 and parts[0] in self.local_types:
            target = self.graph.resolve_method(self.local_types[parts[0]], parts[1])
            return None if target is None else (target, "method")

        # Bare name: module-level def, local class, or from-import.
        if len(parts) == 1:
            local_fn = f"{module}.{name}"
            if local_fn in self.graph.functions:
                return local_fn, "direct"
            class_qname = _resolve_class_name(
                name, self.bindings, self.graph, module
            )
            if class_qname is not None:
                init = self.graph.resolve_method(class_qname, "__init__")
                return None if init is None else (init, "init")
            expanded = _expand(name, self.bindings, module)
            if expanded is not None and expanded in self.graph.functions:
                return expanded, "direct"
            return None

        # Dotted name through import bindings or a local class.
        expanded = _expand(name, self.bindings, module)
        for candidate in filter(None, (expanded, f"{module}.{name}")):
            if candidate in self.graph.functions:
                return candidate, "direct"
            if candidate in self.graph.classes:
                init = self.graph.resolve_method(candidate, "__init__")
                return None if init is None else (init, "init")
            # mod.Class.method — split off a trailing method segment.
            head, _, tail = candidate.rpartition(".")
            if head in self.graph.classes:
                target = self.graph.resolve_method(head, tail)
                if target is not None:
                    return target, "method"
        return None


def _resolve_edges(graph: CallGraph, module: SourceModule) -> None:
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _visit_function(graph, module, stmt, None)
        elif isinstance(stmt, ast.ClassDef):
            info = graph.classes.get(f"{module.module}.{stmt.name}")
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _visit_function(graph, module, item, info)
    # Import-time body: module statements minus indexed def/method bodies
    # (their decorators and default values still run at import).
    body_node = graph.functions[f"{module.module}.{MODULE_BODY}"]
    visitor = _EdgeVisitor(graph, module, body_node, None)
    for child in iter_import_time_nodes(module.tree):
        visitor.visit(child)


def _visit_function(
    graph: CallGraph,
    module: SourceModule,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    cls: ClassInfo | None,
) -> None:
    qname = (
        f"{module.module}.{cls.name}.{node.name}"
        if cls is not None
        else f"{module.module}.{node.name}"
    )
    caller = graph.functions.get(qname)
    if caller is None:  # pragma: no cover - indexing and walking agree
        return
    visitor = _EdgeVisitor(graph, module, caller, cls)
    visitor.seed_params(node)
    for stmt in node.body:
        visitor.visit(stmt)


def iter_import_time_nodes(tree: ast.Module) -> list[ast.AST]:
    """AST nodes evaluated at import time: module statements with
    function *bodies* stripped (decorators/defaults/annotations kept),
    descending one level into class bodies the same way.  An
    ``if __name__ == "__main__":`` block is entry-point execution, not
    import-time evaluation, and is excluded."""
    out: list[ast.AST] = []

    def emit(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.extend(stmt.decorator_list)
                args = stmt.args
                out.extend(list(args.defaults) + [d for d in args.kw_defaults if d])
            elif isinstance(stmt, ast.ClassDef):
                out.extend(stmt.decorator_list)
                out.extend(stmt.bases)
                emit(stmt.body)
            elif isinstance(stmt, ast.If) and _is_main_guard(stmt.test):
                continue
            else:
                out.append(stmt)

    emit(tree.body)
    return out


def _is_main_guard(test: ast.expr) -> bool:
    return (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == "__name__"
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Eq)
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value == "__main__"
    )
