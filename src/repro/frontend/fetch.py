"""The fetch engine: stream (µ-op cache) and build (L1I + decode) modes.

Implements the two-mode frontend of paper Section II:

* **stream mode** — the FTQ head indexes only the µ-op cache; a hit
  delivers up to 8 µ-ops (one entry) per cycle with a short frontend
  latency.  A miss switches to build mode (1-cycle penalty).
* **build mode** — the L1I is fetched (through the full memory hierarchy)
  and up to 6 instructions per cycle are decoded with a longer frontend
  latency, while the µ-op entry builder creates entries and installs them.
  The µ-op cache tags are still probed; after ``stream_switch_threshold``
  consecutive hits the frontend switches back to stream mode (1-cycle
  penalty).

The engine also implements the idealisations of Section III (ideal µ-op
cache, L1I-Hits, IdealBRCond-N) and the MRC baseline's refill streaming,
because all of them are alternative µ-op *sources* for the same FTQ
consumption loop.
"""

from __future__ import annotations

from collections import deque

from repro.caches.hierarchy import MemoryHierarchy
from repro.caches.uopcache import UopCache, UopEntryBuilder
from repro.common.stats import StatBlock
from repro.core.codemap import CodeMap
from repro.core.configs import SimConfig
from repro.frontend.ftq import FTQ
from repro.isa.instruction import BranchClass
from repro.isa.trace import Trace

STREAM = "stream"
BUILD = "build"

#: Sentinel for "blocked, but on another component's progress, not on a
#: known-latency event of our own" in :meth:`FetchEngine.idle_until`.
NEVER = 1 << 62

_NOT_BRANCH = int(BranchClass.NOT_BRANCH)
_COND_DIRECT = int(BranchClass.COND_DIRECT)

#: Precomputed µ-op source stat keys (the per-delivery f-string showed up
#: in profiles).
UOPS_UOP = "uops_uop"
UOPS_DECODE = "uops_decode"
UOPS_MRC = "uops_mrc"


class FetchEngine:
    """Consumes FTQ blocks and produces µ-ops into the µ-op queue."""

    def __init__(
        self,
        config: SimConfig,
        trace: Trace,
        uop_cache: UopCache | None,
        hierarchy: MemoryHierarchy,
        codemap: CodeMap,
        stats: StatBlock,
        prefetcher=None,
        mrc=None,
    ) -> None:
        self.config = config
        self.trace = trace
        self.uop_cache = uop_cache
        self.hierarchy = hierarchy
        self.codemap = codemap
        self.stats = stats
        self.prefetcher = prefetcher
        self.mrc = mrc
        # Hot-path flattening: tick() runs every cycle and _deliver() for
        # every µ-op, so trace columns are read as plain lists and the
        # config scalars consulted per cycle are bound once here.
        self._pcs, self._classes, _takens, _targets, self._next_pcs = trace.list_columns()
        frontend = config.frontend
        self._stream_latency = frontend.stream_path_latency
        self._build_latency = frontend.build_path_latency
        self._decode_width = frontend.decode_width
        self._queue_capacity = frontend.uop_queue_capacity
        self._switch_threshold = frontend.stream_switch_threshold
        self._line_size = hierarchy.config.l1i.line_size
        self._ports = config.uop_cache.n_banks if config.uop_cache else 2
        self._ideal_uop = config.ideal_uop_cache
        self._l1i_hits_are_uop_hits = config.l1i_hits_are_uop_hits

        #: µ-op queue: (trace_index, ready_cycle), in order.
        self.uop_queue: deque[tuple[int, int]] = deque()

        self._block = None
        self._offset = 0
        self._stall_until = 0
        if uop_cache is None:
            self._mode = None
        elif config.ideal_uop_cache:
            self._mode = STREAM  # an ideal µ-op cache never leaves stream
        else:
            self._mode = BUILD
        self._consecutive_hits = 0
        self._builder = UopEntryBuilder(config.uop_cache) if uop_cache else None
        #: IdealBRCond-N: conditional branches remaining to treat as hits.
        self._ideal_cond_remaining = 0
        #: MRC: µ-ops remaining to stream from a hit MRC entry.
        self._mrc_stream_remaining = 0
        #: MRC stream armed, engaging on the first post-redirect µ-op miss.
        self._mrc_pending = 0
        #: Set by UCP's SharedDecoders variant reader: True on cycles where
        #: the demand path used the decoders.
        self.decoders_busy_this_cycle = False
        #: µ-op cache tag banks used by the demand path this cycle.
        self.uop_banks_used: set[int] = set()
        #: True between a redirect and the first µ-op cache lookup after it.
        self._after_redirect = False
        #: repro.observe event bus; None keeps every emit a pointer test.
        self.observer = None

    # ------------------------------------------------------------------
    # External events
    # ------------------------------------------------------------------

    def on_redirect(self, cycle: int, target_index: int) -> None:
        """A mispredicted branch resolved; fetch restarts on the new path."""
        if self.uop_cache is not None and not self.config.ideal_uop_cache:
            # After a flush the frontend re-enters stream mode: the refill
            # queries the µ-op cache first (paying the switch back to build
            # if the correct path is not cached) — the pipeline-refill
            # acceleration UCP exploits (paper Sections II/III-C).
            self._mode = STREAM
            self._consecutive_hits = 0
        self._after_redirect = True
        if self._builder is not None:
            # Close the partially built entry at the break; its µ-ops were
            # real (pre-branch correct path), so it is still installed.
            entry = self._builder.flush(next_pc=0)
            if entry is not None and self.uop_cache is not None:
                self.uop_cache.insert(entry)
        if self.config.ideal_brcond_window:
            self._ideal_cond_remaining = self.config.ideal_brcond_window
        if self.mrc is not None and target_index < len(self.trace):
            target_pc = int(self.trace.pcs[target_index])
            recorded = self.mrc.access(target_pc, recorded_index=target_index)
            if recorded is not None:
                self.stats.add("mrc_hits")
                # The entry streams the µ-ops recorded on a *previous*
                # misprediction at this target; it is only useful up to
                # the point where that recorded path diverges from the
                # current one.  It supplements the µ-op cache: it engages
                # only if the refill's first µ-op lookup misses (with no
                # µ-op cache it engages immediately).
                length = self._mrc_match_length(recorded, target_index)
                if self.uop_cache is None:
                    self._mrc_stream_remaining = length
                else:
                    self._mrc_pending = length
            else:
                self.stats.add("mrc_misses")

    def _mrc_match_length(self, recorded_index: int, current_index: int) -> int:
        pcs = self.trace.pcs
        limit = min(
            self.mrc.uops_per_entry,
            len(self.trace) - max(recorded_index, current_index),
        )
        length = 0
        while length < limit and pcs[recorded_index + length] == pcs[current_index + length]:
            length += 1
        return length

    def queue_room(self) -> int:
        return self._queue_capacity - len(self.uop_queue)

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------

    def tick(self, cycle: int, ftq: FTQ) -> None:
        self.decoders_busy_this_cycle = False
        if self.uop_banks_used:
            self.uop_banks_used.clear()
        if cycle < self._stall_until:
            return
        if self._block is None:
            if not ftq:
                return
            self._block = ftq.pop()
            self._offset = 0
        room = self._queue_capacity - len(self.uop_queue)
        if room <= 0:
            return

        index = self._block.start_index + self._offset
        pc = self._pcs[index]
        remaining = self._block.count - self._offset

        # 1. MRC streaming after a misprediction (baseline of Section VI-F).
        if self._mrc_stream_remaining > 0:
            n = min(8, remaining, room, self._mrc_stream_remaining)
            self._deliver(index, n, cycle + self._stream_latency, UOPS_MRC)
            self._mrc_stream_remaining -= n
            return

        # 2. No µ-op cache at all: pure L1I + decode path (idealisations
        #    without a µ-op cache are not meaningful).
        if self.uop_cache is None:
            self._build_step(pc, room, cycle, ftq)
            return

        if self._mode == STREAM:
            self._stream_step(cycle, ftq, room)
        else:
            # Idealisations force µ-op-cache-hit behaviour even here, and
            # count toward the switch-back heuristic (an L1I-resident line
            # *is* a µ-op hit under L1I-Hits).
            if self._treat_as_hit(pc):
                n = min(8, remaining, room)
                self._deliver(index, n, cycle + self._stream_latency, UOPS_UOP)
                self._consecutive_hits += 1
                if self._consecutive_hits >= self._switch_threshold:
                    self._switch_mode(STREAM, cycle)
                return
            # Build mode: probe the µ-op tags at entry-aligned boundaries
            # for the switch-back heuristic, then run the slow path.
            if self._offset == 0 or pc % 32 == 0:
                if self.uop_cache.probe(pc):
                    self._consecutive_hits += 1
                    if self._consecutive_hits >= self._switch_threshold:
                        self._switch_mode(STREAM, cycle)
                        return
                else:
                    self._consecutive_hits = 0
            self._build_step(pc, room, cycle, ftq)

    # ------------------------------------------------------------------
    # Idle-cycle skipping support
    # ------------------------------------------------------------------

    def idle_until(self, cycle: int, ftq: FTQ) -> int | None:
        """Earliest cycle at which :meth:`tick` could change state.

        Returns ``None`` when a tick *now* may change state (so the cycle
        must be executed), ``NEVER`` when the engine is blocked on another
        component's progress rather than on time, or a wake cycle
        ``> cycle`` when the only thing the engine is waiting for is a
        known-latency event (mode-switch stall, L1I fill).  Conservative by
        construction: any situation this method does not fully understand
        answers ``None``.
        """
        if cycle < self._stall_until:
            return self._stall_until
        block = self._block
        if block is None:
            # With no current block a tick would only pop the FTQ.
            return None if ftq else NEVER
        if len(self.uop_queue) >= self._queue_capacity:
            return NEVER  # blocked on dispatch draining the µ-op queue
        if self._mrc_stream_remaining > 0:
            return None
        if self.uop_cache is None:
            return self._build_idle_until(cycle, block)
        if self._mode == STREAM:
            # Stream mode always performs lookups (and may switch modes).
            return None
        pc = self._pcs[block.start_index + self._offset]
        if self._treat_as_hit(pc):
            return None
        if self._offset == 0 or pc % 32 == 0:
            # The entry-aligned tag probe mutates the switch-back counter
            # every cycle while an entry is present, and a non-zero counter
            # would be reset by a failing probe.
            if self._consecutive_hits or self.uop_cache.probe(pc):
                return None
        return self._build_idle_until(cycle, block)

    def _build_idle_until(self, cycle: int, block) -> int | None:
        """Idle horizon of the L1I + decode path for the current block."""
        pc = self._pcs[block.start_index + self._offset]
        builder = self._builder
        if (
            self._offset == 0
            and builder is not None
            and builder.open_entry_start is not None
            and builder.open_entry_start != pc
        ):
            return None  # a tick would flush the open builder entry
        ready = block.line_ready.get(pc // self._line_size)
        if ready is None or ready <= cycle:
            # Line ready (a tick delivers) or never requested (a tick
            # issues the demand fetch) — both change state now.
            return None
        return ready

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _stream_step(self, cycle: int, ftq: FTQ, room: int) -> None:
        """Stream mode: up to two entry reads (dual-ported tags, Table II),
        eight µ-ops total, per cycle."""
        ready = cycle + self._stream_latency
        budget = 8
        for _port in range(self._ports):
            if budget <= 0 or room <= 0:
                return
            if self._block is None:
                if not ftq:
                    return
                self._block = ftq.pop()
                self._offset = 0
            index = self._block.start_index + self._offset
            pc = self._pcs[index]
            if self._treat_as_hit(pc):
                n = min(budget, self._block.count - self._offset, room)
                self._deliver(index, n, ready, UOPS_UOP)
                budget -= n
                room -= n
                continue
            self.uop_banks_used.add(self.uop_cache.bank_of(pc))
            entry = self.uop_cache.lookup(pc)
            if self._after_redirect:
                self._after_redirect = False
                self.stats.add("refill_first_hit" if entry else "refill_first_miss")
            if entry is None:
                if self._mrc_pending > 0:
                    # MRC covers the refill the µ-op cache cannot.
                    self._mrc_stream_remaining = self._mrc_pending
                    self._mrc_pending = 0
                    return
                self._switch_mode(BUILD, cycle)
                return
            self._mrc_pending = 0  # the µ-op cache covers this refill
            n = min(entry.n_uops, self._block.count - self._offset, room, budget)
            self._deliver(index, n, ready, UOPS_UOP)
            budget -= n
            room -= n

    def _treat_as_hit(self, pc: int) -> bool:
        if self._ideal_uop:
            return True
        if self._ideal_cond_remaining > 0:
            return True
        if self._l1i_hits_are_uop_hits and self.hierarchy.l1i.probe(pc):
            return True
        return False

    def _switch_mode(self, mode: str, cycle: int) -> None:
        self._mode = mode
        self._consecutive_hits = 0
        self._stall_until = cycle + self.config.frontend.mode_switch_penalty
        self.stats.add("mode_switches")
        observer = self.observer
        if observer is not None:
            observer.emit("fetch_mode_switch", to=mode)

    def _build_step(self, pc: int, room: int, cycle: int, ftq: FTQ) -> None:
        """One cycle of the L1I + decoder path."""
        line_size = self._line_size
        # Entries never straddle fetch blocks: block boundaries are path-
        # deterministic, so aligning entry starts with block starts keeps
        # later stream-mode lookups (which happen at block starts) aligned
        # with the entries built here.
        builder = self._builder
        if (
            self._offset == 0
            and builder is not None
            and builder.open_entry_start is not None
            and builder.open_entry_start != pc
        ):
            entry = builder.flush(next_pc=pc)
            if entry is not None:
                self.uop_cache.insert(entry)
        ready = cycle + self._build_latency
        pcs = self._pcs
        classes = self._classes
        next_pcs = self._next_pcs
        budget = self._decode_width
        # The fetch unit reads two (even/odd interleaved) lines per cycle
        # (paper Fig. 1) into a byte queue; the decoders then consume at
        # full width across line and fetch-block boundaries.
        lines_used: set[int] = set()
        delivered_any = False

        while budget > 0 and room > 0:
            if self._block is None:
                break
            block = self._block
            index = block.start_index + self._offset
            block_count = block.count
            block_line_ready = block.line_ready
            n = 0
            while budget - n > 0 and self._offset + n < block_count and n < room:
                i = index + n
                ipc = pcs[i]
                line = ipc // line_size
                if line not in lines_used:
                    if len(lines_used) >= 2:
                        break  # at most two new lines per cycle
                    line_ready = block_line_ready.get(line)
                    if line_ready is None:
                        # Restart edge case: FDP never saw this line.
                        _hit, line_ready = self.hierarchy.fetch_line(ipc, cycle)
                        block_line_ready[line] = line_ready
                    if cycle < line_ready:
                        break  # bytes not back yet
                    lines_used.add(line)
                if builder is not None:
                    is_last = (self._offset + n) == block_count - 1
                    predicted_taken = bool(is_last and block.ends_taken)
                    is_branch = classes[i] != _NOT_BRANCH
                    for entry in builder.add(ipc, is_branch, predicted_taken, next_pcs[i]):
                        self.uop_cache.insert(entry)
                n += 1
            if n == 0:
                break
            self._deliver(index, n, ready, UOPS_DECODE)
            delivered_any = True
            budget -= n
            room -= n
            if self._block is block:
                break  # stopped mid-block (line wait / budget)
            if not ftq:
                break
            self._block = ftq.pop()
            self._offset = 0
            start_pc = pcs[self._block.start_index]
            # New block: keep entry starts aligned with block starts.
            if builder is not None and builder.open_entry_start is not None:
                if builder.open_entry_start != start_pc:
                    entry = builder.flush(next_pc=start_pc)
                    if entry is not None and self.uop_cache is not None:
                        self.uop_cache.insert(entry)
            # The µ-op tags are probed in parallel while building (paper
            # Section II): block starts are the entry-aligned points.
            if self.uop_cache is not None and self._mode == BUILD:
                if self.uop_cache.probe(start_pc):
                    self._consecutive_hits += 1
                    if self._consecutive_hits >= self._switch_threshold:
                        self._switch_mode(STREAM, cycle)
                        break
                else:
                    self._consecutive_hits = 0

        if delivered_any:
            self.decoders_busy_this_cycle = True

    def _deliver(self, index: int, n: int, ready: int, stat_key: str) -> None:
        """Move ``n`` µ-ops starting at trace ``index`` into the µ-op queue.

        ``stat_key`` is one of the precomputed ``UOPS_*`` source counters.
        Every delivered µ-op is recorded in the codemap here — the build
        path relies on this single recording site (decoded instructions are
        delivered in the same call).
        """
        append = self.uop_queue.append
        record = self.codemap.record
        pcs = self._pcs
        classes = self._classes
        if self._ideal_cond_remaining > 0:
            for i in range(index, index + n):
                append((i, ready))
                branch_class = classes[i]
                record(pcs[i], branch_class)
                if self._ideal_cond_remaining > 0 and branch_class == _COND_DIRECT:
                    self._ideal_cond_remaining -= 1
        else:
            for i in range(index, index + n):
                append((i, ready))
                record(pcs[i], classes[i])
        self.stats.add(stat_key, n)
        self._offset += n
        if self._offset >= self._block.count:
            self._block = None
            self._offset = 0

    @property
    def mode(self) -> str | None:
        return self._mode

    def check_invariants(self) -> None:
        """Sim-sanitizer hook: mode exclusivity and µ-op queue sequencing."""
        if self.uop_cache is None:
            assert self._mode is None, (
                f"fetch mode {self._mode!r} with no µ-op cache configured"
            )
        elif self.config.ideal_uop_cache:
            assert self._mode == STREAM, (
                f"ideal µ-op cache left stream mode (mode={self._mode!r})"
            )
        else:
            assert self._mode in (STREAM, BUILD), (
                f"fetch mode {self._mode!r} is neither stream nor build"
            )
        queue = self.uop_queue
        assert len(queue) <= self.config.frontend.uop_queue_capacity, (
            f"µ-op queue holds {len(queue)} > capacity "
            f"{self.config.frontend.uop_queue_capacity}"
        )
        # Ready cycles need not be monotonic (a build->stream switch makes
        # younger µops ready earlier; in-order dispatch gates on the head),
        # but the indices must be strictly sequential.
        previous: tuple[int, int] | None = None
        for item in queue:
            if previous is not None:
                assert item[0] == previous[0] + 1, (
                    f"µ-op queue indices not sequential: {previous[0]} "
                    f"followed by {item[0]} (duplicate/skipped µ-op)"
                )
            previous = item
        if self._block is not None:
            assert 0 <= self._offset < self._block.count, (
                f"fetch offset {self._offset} outside current block "
                f"{self._block!r}"
            )
        else:
            assert self._offset == 0, (
                f"fetch offset {self._offset} with no current block"
            )
