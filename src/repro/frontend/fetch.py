"""The fetch engine: stream (µ-op cache) and build (L1I + decode) modes.

Implements the two-mode frontend of paper Section II:

* **stream mode** — the FTQ head indexes only the µ-op cache; a hit
  delivers up to 8 µ-ops (one entry) per cycle with a short frontend
  latency.  A miss switches to build mode (1-cycle penalty).
* **build mode** — the L1I is fetched (through the full memory hierarchy)
  and up to 6 instructions per cycle are decoded with a longer frontend
  latency, while the µ-op entry builder creates entries and installs them.
  The µ-op cache tags are still probed; after ``stream_switch_threshold``
  consecutive hits the frontend switches back to stream mode (1-cycle
  penalty).

The engine also implements the idealisations of Section III (ideal µ-op
cache, L1I-Hits, IdealBRCond-N) and the MRC baseline's refill streaming,
because all of them are alternative µ-op *sources* for the same FTQ
consumption loop.
"""

from __future__ import annotations

from collections import deque

from repro.caches.hierarchy import MemoryHierarchy
from repro.caches.uopcache import UopCache, UopEntryBuilder
from repro.common.stats import StatBlock
from repro.core.codemap import CodeMap
from repro.core.configs import SimConfig
from repro.frontend.ftq import FTQ
from repro.isa.instruction import BranchClass
from repro.isa.trace import Trace

STREAM = "stream"
BUILD = "build"


class FetchEngine:
    """Consumes FTQ blocks and produces µ-ops into the µ-op queue."""

    def __init__(
        self,
        config: SimConfig,
        trace: Trace,
        uop_cache: UopCache | None,
        hierarchy: MemoryHierarchy,
        codemap: CodeMap,
        stats: StatBlock,
        prefetcher=None,
        mrc=None,
    ) -> None:
        self.config = config
        self.trace = trace
        self.uop_cache = uop_cache
        self.hierarchy = hierarchy
        self.codemap = codemap
        self.stats = stats
        self.prefetcher = prefetcher
        self.mrc = mrc

        #: µ-op queue: (trace_index, ready_cycle), in order.
        self.uop_queue: deque[tuple[int, int]] = deque()

        self._block = None
        self._offset = 0
        self._stall_until = 0
        if uop_cache is None:
            self._mode = None
        elif config.ideal_uop_cache:
            self._mode = STREAM  # an ideal µ-op cache never leaves stream
        else:
            self._mode = BUILD
        self._consecutive_hits = 0
        self._builder = UopEntryBuilder(config.uop_cache) if uop_cache else None
        #: IdealBRCond-N: conditional branches remaining to treat as hits.
        self._ideal_cond_remaining = 0
        #: MRC: µ-ops remaining to stream from a hit MRC entry.
        self._mrc_stream_remaining = 0
        #: MRC stream armed, engaging on the first post-redirect µ-op miss.
        self._mrc_pending = 0
        #: Set by UCP's SharedDecoders variant reader: True on cycles where
        #: the demand path used the decoders.
        self.decoders_busy_this_cycle = False
        #: µ-op cache tag banks used by the demand path this cycle.
        self.uop_banks_used: set[int] = set()
        #: True between a redirect and the first µ-op cache lookup after it.
        self._after_redirect = False

    # ------------------------------------------------------------------
    # External events
    # ------------------------------------------------------------------

    def on_redirect(self, cycle: int, target_index: int) -> None:
        """A mispredicted branch resolved; fetch restarts on the new path."""
        if self.uop_cache is not None and not self.config.ideal_uop_cache:
            # After a flush the frontend re-enters stream mode: the refill
            # queries the µ-op cache first (paying the switch back to build
            # if the correct path is not cached) — the pipeline-refill
            # acceleration UCP exploits (paper Sections II/III-C).
            self._mode = STREAM
            self._consecutive_hits = 0
        self._after_redirect = True
        if self._builder is not None:
            # Close the partially built entry at the break; its µ-ops were
            # real (pre-branch correct path), so it is still installed.
            entry = self._builder.flush(next_pc=0)
            if entry is not None and self.uop_cache is not None:
                self.uop_cache.insert(entry)
        if self.config.ideal_brcond_window:
            self._ideal_cond_remaining = self.config.ideal_brcond_window
        if self.mrc is not None and target_index < len(self.trace):
            target_pc = int(self.trace.pcs[target_index])
            recorded = self.mrc.access(target_pc, recorded_index=target_index)
            if recorded is not None:
                self.stats.add("mrc_hits")
                # The entry streams the µ-ops recorded on a *previous*
                # misprediction at this target; it is only useful up to
                # the point where that recorded path diverges from the
                # current one.  It supplements the µ-op cache: it engages
                # only if the refill's first µ-op lookup misses (with no
                # µ-op cache it engages immediately).
                length = self._mrc_match_length(recorded, target_index)
                if self.uop_cache is None:
                    self._mrc_stream_remaining = length
                else:
                    self._mrc_pending = length
            else:
                self.stats.add("mrc_misses")

    def _mrc_match_length(self, recorded_index: int, current_index: int) -> int:
        pcs = self.trace.pcs
        limit = min(
            self.mrc.uops_per_entry,
            len(self.trace) - max(recorded_index, current_index),
        )
        length = 0
        while length < limit and pcs[recorded_index + length] == pcs[current_index + length]:
            length += 1
        return length

    def queue_room(self) -> int:
        return self.config.frontend.uop_queue_capacity - len(self.uop_queue)

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------

    def tick(self, cycle: int, ftq: FTQ) -> None:
        self.decoders_busy_this_cycle = False
        self.uop_banks_used.clear()
        if cycle < self._stall_until:
            return
        if self._block is None:
            if not ftq:
                return
            self._block = ftq.pop()
            self._offset = 0
        room = self.queue_room()
        if room <= 0:
            return

        index = self._block.start_index + self._offset
        pc = int(self.trace.pcs[index])
        remaining = self._block.count - self._offset

        # 1. MRC streaming after a misprediction (baseline of Section VI-F).
        if self._mrc_stream_remaining > 0:
            n = min(8, remaining, room, self._mrc_stream_remaining)
            self._deliver(index, n, cycle + self.config.frontend.stream_path_latency, "mrc")
            self._mrc_stream_remaining -= n
            return

        # 2. No µ-op cache at all: pure L1I + decode path (idealisations
        #    without a µ-op cache are not meaningful).
        if self.uop_cache is None:
            self._build_step(pc, room, cycle, ftq)
            return

        if self._mode == STREAM:
            self._stream_step(cycle, ftq, room)
        else:
            # Idealisations force µ-op-cache-hit behaviour even here, and
            # count toward the switch-back heuristic (an L1I-resident line
            # *is* a µ-op hit under L1I-Hits).
            if self._treat_as_hit(pc):
                n = min(8, remaining, room)
                self._deliver(
                    index, n, cycle + self.config.frontend.stream_path_latency, "uop"
                )
                self._consecutive_hits += 1
                if self._consecutive_hits >= self.config.frontend.stream_switch_threshold:
                    self._switch_mode(STREAM, cycle)
                return
            # Build mode: probe the µ-op tags at entry-aligned boundaries
            # for the switch-back heuristic, then run the slow path.
            if self._offset == 0 or pc % 32 == 0:
                if self.uop_cache.probe(pc):
                    self._consecutive_hits += 1
                    if self._consecutive_hits >= self.config.frontend.stream_switch_threshold:
                        self._switch_mode(STREAM, cycle)
                        return
                else:
                    self._consecutive_hits = 0
            self._build_step(pc, room, cycle, ftq)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _stream_step(self, cycle: int, ftq: FTQ, room: int) -> None:
        """Stream mode: up to two entry reads (dual-ported tags, Table II),
        eight µ-ops total, per cycle."""
        ports = self.config.uop_cache.n_banks if self.config.uop_cache else 2
        ready = cycle + self.config.frontend.stream_path_latency
        budget = 8
        for _port in range(ports):
            if budget <= 0 or room <= 0:
                return
            if self._block is None:
                if not ftq:
                    return
                self._block = ftq.pop()
                self._offset = 0
            index = self._block.start_index + self._offset
            pc = int(self.trace.pcs[index])
            if self._treat_as_hit(pc):
                n = min(budget, self._block.count - self._offset, room)
                self._deliver(index, n, ready, "uop")
                budget -= n
                room -= n
                continue
            self.uop_banks_used.add(self.uop_cache.bank_of(pc))
            entry = self.uop_cache.lookup(pc)
            if self._after_redirect:
                self._after_redirect = False
                self.stats.add("refill_first_hit" if entry else "refill_first_miss")
            if entry is None:
                if self._mrc_pending > 0:
                    # MRC covers the refill the µ-op cache cannot.
                    self._mrc_stream_remaining = self._mrc_pending
                    self._mrc_pending = 0
                    return
                self._switch_mode(BUILD, cycle)
                return
            self._mrc_pending = 0  # the µ-op cache covers this refill
            n = min(entry.n_uops, self._block.count - self._offset, room, budget)
            self._deliver(index, n, ready, "uop")
            budget -= n
            room -= n

    def _treat_as_hit(self, pc: int) -> bool:
        if self.config.ideal_uop_cache:
            return True
        if self._ideal_cond_remaining > 0:
            return True
        if self.config.l1i_hits_are_uop_hits and self.hierarchy.l1i.probe(pc):
            return True
        return False

    def _switch_mode(self, mode: str, cycle: int) -> None:
        self._mode = mode
        self._consecutive_hits = 0
        self._stall_until = cycle + self.config.frontend.mode_switch_penalty
        self.stats.add("mode_switches")

    def _build_step(self, pc: int, room: int, cycle: int, ftq: FTQ) -> None:
        """One cycle of the L1I + decoder path."""
        line_size = self.hierarchy.config.l1i.line_size
        # Entries never straddle fetch blocks: block boundaries are path-
        # deterministic, so aligning entry starts with block starts keeps
        # later stream-mode lookups (which happen at block starts) aligned
        # with the entries built here.
        if (
            self._offset == 0
            and self._builder is not None
            and self._builder.open_entry_start is not None
            and self._builder.open_entry_start != pc
        ):
            entry = self._builder.flush(next_pc=pc)
            if entry is not None:
                self.uop_cache.insert(entry)
        frontend = self.config.frontend
        ready = cycle + frontend.build_path_latency
        trace = self.trace
        budget = frontend.decode_width
        # The fetch unit reads two (even/odd interleaved) lines per cycle
        # (paper Fig. 1) into a byte queue; the decoders then consume at
        # full width across line and fetch-block boundaries.
        lines_used: set[int] = set()
        delivered_any = False

        while budget > 0 and room > 0:
            if self._block is None:
                break
            block = self._block
            index = block.start_index + self._offset
            n = 0
            while budget - n > 0 and self._offset + n < block.count and n < room:
                i = index + n
                ipc = int(trace.pcs[i])
                line = ipc // line_size
                if line not in lines_used:
                    if len(lines_used) >= 2:
                        break  # at most two new lines per cycle
                    line_ready = block.line_ready.get(line)
                    if line_ready is None:
                        # Restart edge case: FDP never saw this line.
                        _hit, line_ready = self.hierarchy.fetch_line(ipc, cycle)
                        block.line_ready[line] = line_ready
                    if cycle < line_ready:
                        break  # bytes not back yet
                    lines_used.add(line)
                branch_class = int(trace.branch_classes[i])
                self.codemap.record(ipc, branch_class)
                if self._builder is not None:
                    is_last = (self._offset + n) == block.count - 1
                    predicted_taken = bool(is_last and block.ends_taken)
                    is_branch = branch_class != BranchClass.NOT_BRANCH
                    next_pc = int(trace.next_pcs[i])
                    for entry in self._builder.add(ipc, is_branch, predicted_taken, next_pc):
                        self.uop_cache.insert(entry)
                n += 1
            if n == 0:
                break
            self._deliver(index, n, ready, "decode")
            delivered_any = True
            budget -= n
            room -= n
            if self._block is block:
                break  # stopped mid-block (line wait / budget)
            if not ftq:
                break
            self._block = ftq.pop()
            self._offset = 0
            start_pc = int(trace.pcs[self._block.start_index])
            # New block: keep entry starts aligned with block starts.
            if self._builder is not None and self._builder.open_entry_start is not None:
                if self._builder.open_entry_start != start_pc:
                    entry = self._builder.flush(next_pc=start_pc)
                    if entry is not None and self.uop_cache is not None:
                        self.uop_cache.insert(entry)
            # The µ-op tags are probed in parallel while building (paper
            # Section II): block starts are the entry-aligned points.
            if self.uop_cache is not None and self._mode == BUILD:
                if self.uop_cache.probe(start_pc):
                    self._consecutive_hits += 1
                    if self._consecutive_hits >= frontend.stream_switch_threshold:
                        self._switch_mode(STREAM, cycle)
                        break
                else:
                    self._consecutive_hits = 0

        if delivered_any:
            self.decoders_busy_this_cycle = True

    def _deliver(self, index: int, n: int, ready: int, source: str) -> None:
        """Move ``n`` µ-ops starting at trace ``index`` into the µ-op queue."""
        trace = self.trace
        queue = self.uop_queue
        for k in range(n):
            i = index + k
            queue.append((i, ready))
            branch_class = int(trace.branch_classes[i])
            self.codemap.record(int(trace.pcs[i]), branch_class)
            if (
                self._ideal_cond_remaining > 0
                and branch_class == BranchClass.COND_DIRECT
            ):
                self._ideal_cond_remaining -= 1
        self.stats.add(f"uops_{source}", n)
        self._offset += n
        if self._offset >= self._block.count:
            self._block = None
            self._offset = 0

    @property
    def mode(self) -> str | None:
        return self._mode

    def check_invariants(self) -> None:
        """Sim-sanitizer hook: mode exclusivity and µ-op queue sequencing."""
        if self.uop_cache is None:
            assert self._mode is None, (
                f"fetch mode {self._mode!r} with no µ-op cache configured"
            )
        elif self.config.ideal_uop_cache:
            assert self._mode == STREAM, (
                f"ideal µ-op cache left stream mode (mode={self._mode!r})"
            )
        else:
            assert self._mode in (STREAM, BUILD), (
                f"fetch mode {self._mode!r} is neither stream nor build"
            )
        queue = self.uop_queue
        assert len(queue) <= self.config.frontend.uop_queue_capacity, (
            f"µ-op queue holds {len(queue)} > capacity "
            f"{self.config.frontend.uop_queue_capacity}"
        )
        # Ready cycles need not be monotonic (a build->stream switch makes
        # younger µops ready earlier; in-order dispatch gates on the head),
        # but the indices must be strictly sequential.
        previous: tuple[int, int] | None = None
        for item in queue:
            if previous is not None:
                assert item[0] == previous[0] + 1, (
                    f"µ-op queue indices not sequential: {previous[0]} "
                    f"followed by {item[0]} (duplicate/skipped µ-op)"
                )
            previous = item
        if self._block is not None:
            assert 0 <= self._offset < self._block.count, (
                f"fetch offset {self._offset} outside current block "
                f"{self._block!r}"
            )
        else:
            assert self._offset == 0, (
                f"fetch offset {self._offset} with no current block"
            )
