"""Decoupled frontend: BPU address generation, FTQ, and the fetch engine.

The branch prediction unit (:mod:`repro.frontend.bpu`) runs ahead of fetch,
filling the fetch target queue (:mod:`repro.frontend.ftq`) with predicted
fetch blocks — fetch-directed prefetching (FDP).  The fetch engine
(:mod:`repro.frontend.fetch`) consumes the FTQ in *stream* mode (µ-op
cache) or *build* mode (L1I + decoders), as described in paper Section II.
"""

from repro.frontend.bpu import BPU, BranchEvent
from repro.frontend.fetch import FetchEngine
from repro.frontend.ftq import FTQ, FetchBlock

__all__ = ["BPU", "BranchEvent", "FTQ", "FetchBlock", "FetchEngine"]
