"""Fetch Target Queue: predicted fetch blocks waiting for the fetch engine.

A fetch block is a run of sequential instructions (trace indices) ending
either at a predicted-taken branch, at the block-size limit, or at a
mispredicted branch (after which the BPU stalls until resolution).
"""

from __future__ import annotations

from collections import deque


class FetchBlock:
    """A run of ``count`` sequential-path instructions from ``start_index``.

    ``line_ready`` maps the L1I lines the block covers to the cycle their
    bytes are available: decoupled fetching (FDP) starts the L1I access
    when the BPU inserts the block, so by the time the fetch engine reaches
    it, misses have overlapped with older work (paper Section II).
    """

    __slots__ = ("start_index", "count", "ends_taken", "mispredicted", "line_ready")

    def __init__(
        self,
        start_index: int,
        count: int,
        ends_taken: bool = False,
        mispredicted: bool = False,
        line_ready: dict[int, int] | None = None,
    ) -> None:
        self.start_index = start_index
        self.count = count
        #: The block's last instruction is a predicted-taken branch.
        self.ends_taken = ends_taken
        #: The block's last instruction was mispredicted (direction or
        #: target); the BPU has stalled and fetch must not run past it.
        self.mispredicted = mispredicted
        #: L1I line -> ready cycle (filled by the BPU's FDP access).
        self.line_ready = line_ready if line_ready is not None else {}

    @property
    def end_index(self) -> int:
        return self.start_index + self.count

    def __repr__(self) -> str:
        flags = "T" if self.ends_taken else "-"
        flags += "M" if self.mispredicted else "-"
        return f"FetchBlock([{self.start_index},{self.end_index}) {flags})"


class FTQ:
    """Bounded queue of fetch blocks (capacity counted in instructions)."""

    def __init__(self, capacity: int = 192) -> None:
        self.capacity = capacity
        self._blocks: deque[FetchBlock] = deque()
        self._occupancy = 0
        #: repro.observe event bus; None keeps every emit a pointer test.
        self.observer = None

    def has_room(self, count: int = 1) -> bool:
        return self._occupancy + count <= self.capacity

    def push(self, block: FetchBlock) -> None:
        if not self.has_room(block.count):
            raise OverflowError("FTQ overflow — caller must check has_room")
        self._blocks.append(block)
        self._occupancy += block.count
        observer = self.observer
        if observer is not None:
            observer.emit(
                "ftq_enqueue",
                start_index=block.start_index,
                count=block.count,
                ends_taken=block.ends_taken,
                mispredicted=block.mispredicted,
            )

    def head(self) -> FetchBlock | None:
        return self._blocks[0] if self._blocks else None

    def pop(self) -> FetchBlock:
        block = self._blocks.popleft()
        self._occupancy -= block.count
        return block

    def clear(self) -> None:
        observer = self.observer
        if observer is not None and self._blocks:
            observer.emit(
                "ftq_squash", blocks=len(self._blocks), instructions=self._occupancy
            )
        self._blocks.clear()
        self._occupancy = 0

    def check_invariants(self) -> None:
        """Sim-sanitizer hook: FIFO accounting and trace-order contiguity.

        The BPU walks the recorded correct path linearly (wrong-path
        fetch is not modelled), so queued blocks must partition a
        contiguous, monotonically increasing trace-index range, and only
        the youngest block may carry the mispredicted stall marker.
        """
        total = 0
        previous_end: int | None = None
        last = len(self._blocks) - 1
        for position, block in enumerate(self._blocks):
            assert block.count >= 1, f"FTQ holds an empty block {block!r}"
            total += block.count
            if previous_end is not None:
                assert block.start_index == previous_end, (
                    f"FTQ blocks not contiguous: index {previous_end} "
                    f"followed by {block!r}"
                )
            previous_end = block.end_index
            if block.mispredicted:
                assert position == last, (
                    f"mispredicted block {block!r} is not the FTQ tail — "
                    f"the BPU generated past an unresolved misprediction"
                )
        assert total == self._occupancy, (
            f"FTQ occupancy counter {self._occupancy} != {total} queued "
            f"instructions"
        )
        assert self._occupancy <= self.capacity, (
            f"FTQ occupancy {self._occupancy} > capacity {self.capacity}"
        )

    @property
    def occupancy(self) -> int:
        return self._occupancy

    def __len__(self) -> int:
        return len(self._blocks)

    def __bool__(self) -> bool:
        return bool(self._blocks)
