"""Branch Prediction Unit: decoupled fetch address generation.

Walks the trace ahead of fetch, predicting every branch with the baseline
predictor stack (TAGE-SC-L + BTB + ITTAGE + RAS, paper Table II) and
emitting :class:`~repro.frontend.ftq.FetchBlock` runs into the FTQ.

Misprediction handling follows the classic decoupled-frontend model: on a
mispredicted branch the BPU *stalls* (wrong-path fetch is not simulated)
until the backend resolves the branch and redirects, after which address
generation resumes on the correct path.  BTB misses on taken branches cost
a decode re-steer bubble and train the BTB.

Every processed conditional branch is reported through ``branch_hook`` —
the attachment point for confidence statistics and for UCP's alternate-
path trigger.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.branch.btb import make_btb
from repro.branch.ittage import ITTAGE
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage_sc_l import TageScL, TageScLPrediction
from repro.common.stats import StatBlock
from repro.core.configs import SimConfig
from repro.frontend.ftq import FTQ, FetchBlock
from repro.isa.instruction import BranchClass
from repro.isa.trace import Trace

# BranchClass values as plain ints: the generation loop compares one per
# instruction, and IntEnum member access/comparison goes through
# ``enum.__getattr__`` — measurably slow at trace scale.
_NOT_BRANCH = int(BranchClass.NOT_BRANCH)
_COND_DIRECT = int(BranchClass.COND_DIRECT)
_UNCOND_DIRECT = int(BranchClass.UNCOND_DIRECT)
_CALL_DIRECT = int(BranchClass.CALL_DIRECT)
_CALL_INDIRECT = int(BranchClass.CALL_INDIRECT)
_INDIRECT = int(BranchClass.INDIRECT)
_RETURN = int(BranchClass.RETURN)


class BranchEvent:
    """What the BPU learned about one conditional branch it processed."""

    __slots__ = ("index", "pc", "prediction", "actual_taken", "taken_target", "mispredicted")

    def __init__(
        self,
        index: int,
        pc: int,
        prediction: TageScLPrediction,
        actual_taken: bool,
        taken_target: int | None,
        mispredicted: bool,
    ) -> None:
        self.index = index
        self.pc = pc
        self.prediction = prediction
        self.actual_taken = actual_taken
        #: Taken-direction target if known to the frontend (BTB hit or the
        #: branch is being predicted taken), else None.
        self.taken_target = taken_target
        self.mispredicted = mispredicted


class BPU:
    """Decoupled branch-prediction-directed address generation."""

    def __init__(
        self,
        config: SimConfig,
        trace: Trace,
        stats: StatBlock,
        hierarchy: Any = None,
        prefetcher: Any = None,
    ) -> None:
        self.config = config
        self.trace = trace
        self.stats = stats
        self.hierarchy = hierarchy
        self.prefetcher = prefetcher
        # Hot-path flattening: plain-list trace columns and config scalars
        # (generate() runs every cycle, _build_block() every instruction).
        self._pcs, self._classes, self._takens, self._targets, _next = trace.list_columns()
        self._n_instructions = len(trace)
        self._blocks_per_cycle = config.frontend.bpu_blocks_per_cycle
        self._fetch_block_size = config.frontend.fetch_block_size
        self.cond = TageScL(config.branch_predictor)
        self.btb = make_btb(config.btb)
        self.indirect = ITTAGE(config.indirect_predictor)
        self.ras = ReturnAddressStack(64)
        #: Next trace index to generate an address for.
        self.index = 0
        #: Set while a mispredicted branch is unresolved.
        self.stalled_on: int | None = None
        #: BPU may not generate before this cycle (BTB-miss bubbles,
        #: redirect latency).
        self.resume_cycle = 0
        #: Called for every conditional branch event (confidence, UCP).
        self.branch_hook: Callable[[BranchEvent, int], None] | None = None
        #: Called with (pc, target) on calls/returns (D-JOLT's context).
        self.context_hook: Callable[[int, int], None] | None = None
        #: Called with (pc,) for every unconditional branch processed (UCP
        #: keeps its Alt-BP/Alt-Ind predicted-path histories in sync).
        self.uncond_hook: Callable[[int], None] | None = None
        #: Called with (pc, target) for every indirect branch (Alt-Ind training).
        self.indirect_hook: Callable[[int, int], None] | None = None
        #: BTB banks touched by demand lookups this cycle (UCP conflicts).
        self.btb_banks_used: set[int] = set()
        #: repro.observe event bus; None keeps every emit a pointer test.
        self.observer = None

    # ------------------------------------------------------------------
    # Per-cycle generation
    # ------------------------------------------------------------------

    def generate(self, ftq: FTQ, cycle: int) -> None:
        """Generate up to ``bpu_blocks_per_cycle`` fetch blocks into the FTQ."""
        self.btb_banks_used.clear()
        if self.stalled_on is not None or cycle < self.resume_cycle:
            return
        for _ in range(self._blocks_per_cycle):
            if self.index >= self._n_instructions:
                return
            if not ftq.has_room(self._fetch_block_size):
                return
            block = self._build_block(cycle)
            self._fdp_access(block, cycle)
            ftq.push(block)
            if block.mispredicted or self.stalled_on is not None or cycle < self.resume_cycle:
                return

    def _build_block(self, cycle: int) -> FetchBlock:
        """Walk the predicted path (== trace path, with stalls at wrong
        predictions) until a block-terminating event."""
        classes = self._classes
        block_size = self._fetch_block_size
        n_instructions = self._n_instructions
        start = self.index
        count = 0
        ends_taken = False
        mispredicted = False

        while count < block_size and self.index < n_instructions:
            i = self.index
            branch_class = classes[i]
            self.index += 1
            count += 1
            if branch_class == _NOT_BRANCH:
                continue

            pc = self._pcs[i]
            taken = self._takens[i]
            target = self._targets[i]

            if branch_class == _COND_DIRECT:
                mispredicted, block_taken = self._handle_conditional(
                    i, pc, taken, target, cycle
                )
                if mispredicted or block_taken:
                    ends_taken = block_taken and not mispredicted
                    break
                continue

            # Unconditional branches: always end the fetch block.
            self.cond.push_unconditional(pc)
            self.indirect.push_history(pc, True)
            if self.uncond_hook is not None:
                self.uncond_hook(pc)
            if branch_class == _UNCOND_DIRECT:
                self._direct_target(pc, BranchClass.UNCOND_DIRECT, target, cycle)
            elif branch_class == _CALL_DIRECT:
                self._direct_target(pc, BranchClass.CALL_DIRECT, target, cycle)
                self.ras.push(pc + 4)
                if self.context_hook is not None:
                    self.context_hook(pc, target)
            elif branch_class == _CALL_INDIRECT:
                mispredicted = self._handle_indirect(i, pc, target)
                self.ras.push(pc + 4)
                if self.context_hook is not None:
                    self.context_hook(pc, target)
            elif branch_class == _INDIRECT:
                mispredicted = self._handle_indirect(i, pc, target)
            elif branch_class == _RETURN:
                predicted = self.ras.pop()
                if predicted != target:
                    self.stats.add("ras_mispredictions")
                    mispredicted = True
                    self.stalled_on = i
                    if self.observer is not None:
                        self.observer.on_mispredict(i, pc, "return")
                if self.context_hook is not None:
                    self.context_hook(pc, target)
            ends_taken = not mispredicted
            break

        return FetchBlock(start, count, ends_taken=ends_taken, mispredicted=mispredicted)

    def _fdp_access(self, block: FetchBlock, cycle: int) -> None:
        """Fetch-directed prefetching: access the L1I for the block's lines
        as soon as the block enters the FTQ, overlapping misses."""
        if self.hierarchy is None:
            return
        line_size = self.hierarchy.config.l1i.line_size
        pcs = self._pcs
        line_ready = block.line_ready
        for index in range(block.start_index, block.end_index):
            pc = pcs[index]
            line = pc // line_size
            if line in line_ready:
                continue
            hit, ready = self.hierarchy.fetch_line(pc, cycle)
            self.stats.add("l1i_demand_accesses")
            if not hit:
                self.stats.add("l1i_demand_misses")
            if self.prefetcher is not None:
                self.prefetcher.on_demand_access(line, hit, cycle, self.hierarchy)
            block.line_ready[line] = ready

    # ------------------------------------------------------------------
    # Branch-class handlers
    # ------------------------------------------------------------------

    def _handle_conditional(
        self, index: int, pc: int, taken: bool, target: int, cycle: int
    ) -> tuple[bool, bool]:
        """Predict/update one conditional; returns (mispredicted, ends_block)."""
        prediction = self.cond.predict(pc)
        self.stats.add("cond_branches")
        direction_wrong = prediction.taken != taken

        btb_entry = self.btb.lookup(pc)
        self.btb_banks_used.add(self.btb.bank_of(pc, n_banks=2 * self.btb.config.n_banks))
        taken_target: int | None = btb_entry.target if btb_entry else None
        if taken:
            self.btb.update(pc, BranchClass.COND_DIRECT, target)
            taken_target = target if prediction.taken else taken_target

        mispredicted = direction_wrong
        ends_block = False
        if direction_wrong:
            self.stats.add("cond_mispredictions")
            self.stalled_on = index
            if self.observer is not None:
                self.observer.on_mispredict(index, pc, "cond")
        elif taken:
            # Correctly predicted taken: the target must come from the BTB.
            if btb_entry is None:
                self.stats.add("btb_misses_taken")
                self.resume_cycle = cycle + self.config.frontend.btb_miss_penalty
            ends_block = True

        self.cond.update(prediction, taken)
        self.indirect.push_history(pc, taken)

        if self.branch_hook is not None:
            self.branch_hook(
                BranchEvent(index, pc, prediction, taken, taken_target, mispredicted),
                cycle,
            )
        return mispredicted, ends_block

    def _direct_target(
        self, pc: int, branch_class: BranchClass, target: int, cycle: int
    ) -> None:
        """Jump/call with a static target: BTB provides it or we re-steer."""
        self.btb_banks_used.add(self.btb.bank_of(pc, n_banks=2 * self.btb.config.n_banks))
        if self.btb.lookup(pc) is None:
            self.stats.add("btb_misses_taken")
            self.resume_cycle = cycle + self.config.frontend.btb_miss_penalty
        self.btb.update(pc, branch_class, target)

    def _handle_indirect(self, index: int, pc: int, target: int) -> bool:
        prediction = self.indirect.predict(pc)
        self.stats.add("indirect_branches")
        mispredicted = prediction.target != target
        if mispredicted:
            self.stats.add("indirect_mispredictions")
            self.stalled_on = index
            if self.observer is not None:
                self.observer.on_mispredict(index, pc, "indirect")
        self.indirect.update(prediction, target)
        if self.indirect_hook is not None:
            self.indirect_hook(pc, target)
        branch_class = BranchClass(self._classes[index])
        self.btb.update(pc, branch_class, target)
        return mispredicted

    def check_invariants(self) -> None:
        """Sim-sanitizer hook: generation cursor and predictor stack state."""
        assert 0 <= self.index <= len(self.trace), (
            f"BPU cursor {self.index} outside trace of {len(self.trace)}"
        )
        if self.stalled_on is not None:
            assert 0 <= self.stalled_on < self.index, (
                f"BPU stalled on {self.stalled_on}, which is not behind "
                f"the generation cursor {self.index}"
            )
        self.ras.check_invariants()

    # ------------------------------------------------------------------
    # Redirect
    # ------------------------------------------------------------------

    def redirect(self, cycle: int) -> None:
        """The stalling branch resolved: resume on the correct path."""
        if self.stalled_on is None:
            raise RuntimeError("redirect without a stalled branch")
        self.stalled_on = None
        self.resume_cycle = cycle + self.config.frontend.redirect_latency
