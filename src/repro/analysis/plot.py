"""Terminal plots: horizontal bar charts and sparklines.

The paper's figures are sorted per-trace curves and grouped bars; these
helpers render the same data in plain text so experiment drivers and
examples can show a *figure*, not only a table, without any plotting
dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

#: Eighth-block characters for sparklines, coarsest to finest.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def bar_chart(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart; negative values extend left of the axis."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines = [title, "=" * len(title)]
    if not values:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(str(label)) for label in labels)
    most_negative = min(0.0, min(values))
    most_positive = max(0.0, max(values))
    span = most_positive - most_negative
    if span == 0:
        span = 1.0
    neg_cols = round(width * (-most_negative) / span)
    pos_cols = width - neg_cols
    for label, value in zip(labels, values):
        if value >= 0:
            filled = round(pos_cols * value / most_positive) if most_positive else 0
            bar = " " * neg_cols + "|" + "#" * filled
        else:
            filled = round(neg_cols * (-value) / -most_negative) if most_negative else 0
            bar = " " * (neg_cols - filled) + "#" * filled + "|"
        lines.append(f"{str(label).rjust(label_width)} {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line miniature of a series using block characters."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return _SPARK_LEVELS[4] * len(values)
    chars = []
    for value in values:
        level = round((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def series_plot(
    title: str,
    x_labels: Sequence[str],
    series: dict[str, Sequence[float]],
    height: int = 10,
    width_per_point: int = 6,
) -> str:
    """A coarse multi-series line plot on a character grid."""
    lines = [title, "=" * len(title)]
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return "\n".join(lines + ["(no data)"])
    low, high = min(all_values), max(all_values)
    span = (high - low) or 1.0
    n_points = max(len(values) for values in series.values())
    grid_width = n_points * width_per_point
    grid = [[" "] * grid_width for _ in range(height)]
    markers = "*o+x@%"
    for s_index, (name, values) in enumerate(series.items()):
        marker = markers[s_index % len(markers)]
        for i, value in enumerate(values):
            row = height - 1 - round((value - low) / span * (height - 1))
            col = min(grid_width - 1, i * width_per_point + width_per_point // 2)
            grid[row][col] = marker
    for row_index, row in enumerate(grid):
        level = high - span * row_index / (height - 1) if height > 1 else high
        lines.append(f"{level:8.2f} |{''.join(row)}")
    axis = "".join(str(label).center(width_per_point)[:width_per_point] for label in x_labels)
    lines.append(" " * 9 + "+" + "-" * grid_width)
    lines.append(" " * 10 + axis)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
