"""Cached simulation execution.

Experiments across different figures share many (workload, config) pairs —
every figure needs the baseline, several need the no-µ-op-cache and ideal
configurations.  ``run_cached`` memoises results in-process and, unless
``REPRO_SIM_CACHE=0``, pickles them under ``.simcache/`` so repeated
benchmark invocations skip simulation entirely.

Cache keys include a ``CACHE_VERSION`` salt — bump it whenever simulator
semantics change, or wipe with :func:`clear_disk_cache`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path

from repro.core.configs import SimConfig
from repro.core.pipeline import SimResult, simulate
from repro.workloads.suite import load_workload

#: Bump to invalidate previously cached simulation results.
CACHE_VERSION = 4

_CACHE_DIR = Path(os.environ.get("REPRO_SIM_CACHE_DIR", ".simcache"))
_memory_cache: dict[str, SimResult] = {}


def _disk_enabled() -> bool:
    return os.environ.get("REPRO_SIM_CACHE", "1") != "0"


def _cache_key(workload: str, n_instructions: int, config: SimConfig) -> str:
    blob = f"v{CACHE_VERSION}|{workload}|{n_instructions}|{config!r}"
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def run_cached(workload: str, config: SimConfig, n_instructions: int = 40_000) -> SimResult:
    """Simulate ``workload`` under ``config``, reusing cached results."""
    key = _cache_key(workload, n_instructions, config)
    result = _memory_cache.get(key)
    if result is not None:
        return result

    if _disk_enabled():
        path = _CACHE_DIR / f"{key}.pkl"
        if path.exists():
            try:
                with path.open("rb") as handle:
                    result = pickle.load(handle)
                _memory_cache[key] = result
                return result
            except Exception:
                path.unlink(missing_ok=True)

    spec = load_workload(workload, n_instructions)
    result = simulate(spec.trace, config, name=workload)
    _memory_cache[key] = result

    if _disk_enabled():
        _CACHE_DIR.mkdir(exist_ok=True)
        path = _CACHE_DIR / f"{key}.pkl"
        try:
            with path.open("wb") as handle:
                pickle.dump(result, handle)
        except Exception:
            path.unlink(missing_ok=True)
    return result


def run_suite(
    workloads: list[str], config: SimConfig, n_instructions: int = 40_000
) -> dict[str, SimResult]:
    """Run several workloads under one config (cached)."""
    return {
        name: run_cached(name, config, n_instructions) for name in workloads
    }


def clear_disk_cache() -> int:
    """Delete all on-disk cached results; returns the number removed."""
    if not _CACHE_DIR.exists():
        return 0
    removed = 0
    for path in _CACHE_DIR.glob("*.pkl"):
        path.unlink()
        removed += 1
    return removed
