"""Cached simulation execution.

Experiments across different figures share many (workload, config) pairs —
every figure needs the baseline, several need the no-µ-op-cache and ideal
configurations.  ``run_cached`` memoises results in-process and, unless
``REPRO_SIM_CACHE=0``, pickles them under ``.simcache/`` (or
``REPRO_SIM_CACHE_DIR``) so repeated benchmark invocations skip simulation
entirely.  ``run_suite`` routes batches of workloads through the parallel
execution engine in :mod:`repro.analysis.parallel`.

The on-disk format is hardened against interrupted runs:

* **Atomic writes** — entries are written to a temp file in the cache
  directory and ``os.replace``-d into place, so a killed process can never
  leave a truncated ``.pkl`` at the final path.
* **Checksummed envelope** — each file holds ``(CACHE_VERSION, key,
  sha256, payload)``; loads verify the version, the key and the payload
  digest before unpickling the result, so a wrong or bit-rotted entry is
  discarded and re-simulated rather than silently returned.
* **Single-flight** — concurrent in-process requests for the same key
  simulate once; the rest wait and reuse the result.

Cache keys include a ``CACHE_VERSION`` salt — bump it whenever simulator
semantics change, or wipe with :func:`clear_disk_cache`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from pathlib import Path

from repro.core.configs import SimConfig
from repro.core.pipeline import SimResult, simulate
from repro.observe import telemetry
from repro.workloads.suite import load_workload

#: Bump to invalidate previously cached simulation results.  v5 introduced
#: the checksummed envelope format; older plain-pickle entries fail the
#: envelope check and are discarded on first touch.  v6: UCP walk
#: back-pressure fixed to respect the Alt-FTQ capacity exactly (an
#: off-by-one found by the repro.verify sim sanitizer).  v7: the payload
#: is now ``(config, SimResult.to_dict())`` instead of a raw SimResult
#: pickle — the schema-versioned dict carries the full-run totals and the
#: interval-metrics time-series from the observability layer, and decoding
#: goes through ``SimResult.from_dict`` so shape drift raises instead of
#: resurrecting stale objects.
CACHE_VERSION = 7

_memory_cache: dict[str, SimResult] = {}

# Single-flight bookkeeping: key -> Event set once the simulation finishes.
_inflight: dict[str, threading.Event] = {}
_inflight_lock = threading.Lock()


def _disk_enabled() -> bool:
    return os.environ.get("REPRO_SIM_CACHE", "1") != "0"


def _cache_dir() -> Path:
    """Cache directory, resolved from the environment at call time.

    Reading ``REPRO_SIM_CACHE_DIR`` lazily (rather than at import) lets
    tests and CI redirect the cache without re-importing the module.
    """
    return Path(os.environ.get("REPRO_SIM_CACHE_DIR", ".simcache"))


def cache_key(workload: str, n_instructions: int, config: SimConfig) -> str:
    """Stable content key for one (workload, config, length) simulation.

    Built-in suite workloads are keyed by name (their traces are
    deterministic functions of the committed generator), so existing
    cached results stay valid.  Ingested traces are keyed by
    ``name@digest`` — the content token from the trace store — so the
    key tracks the actual trace bytes, not just the label.
    """
    from repro.workloads.store import cache_token

    blob = f"v{CACHE_VERSION}|{cache_token(workload)}|{n_instructions}|{config!r}"
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


# Backwards-compatible private alias (pre-engine callers used _cache_key).
_cache_key = cache_key


def _entry_path(key: str) -> Path:
    return _cache_dir() / f"{key}.pkl"


def _encode_entry(key: str, result: SimResult) -> bytes:
    payload = pickle.dumps(
        (result.config, result.to_dict()), protocol=pickle.HIGHEST_PROTOCOL
    )
    digest = hashlib.sha256(payload).hexdigest()
    return pickle.dumps(
        (CACHE_VERSION, key, digest, payload), protocol=pickle.HIGHEST_PROTOCOL
    )


def _decode_entry(key: str, raw: bytes) -> SimResult:
    """Decode one cache file; raises on any mismatch or corruption."""
    version, stored_key, digest, payload = pickle.loads(raw)
    if version != CACHE_VERSION:
        raise ValueError(f"cache version {version} != {CACHE_VERSION}")
    if stored_key != key:
        raise ValueError(f"cache key mismatch: {stored_key} != {key}")
    if hashlib.sha256(payload).hexdigest() != digest:
        raise ValueError("cache payload checksum mismatch")
    config, state = pickle.loads(payload)
    if not isinstance(config, SimConfig):
        raise ValueError(f"cache payload config is {type(config).__name__}, not SimConfig")
    return SimResult.from_dict(state, config)


def _load_disk(key: str) -> SimResult | None:
    """Load a verified entry from disk; quarantine anything suspect."""
    if not _disk_enabled():
        return None
    tel = telemetry.maybe()
    path = _entry_path(key)
    if not path.exists():
        if tel is not None:
            tel.counter(
                "repro_cache_misses_total",
                "Disk-cache probes that found no usable entry.",
            ).inc()
        return None
    try:
        result = _decode_entry(key, path.read_bytes())
    except Exception:
        # Truncated, stale-format, or bit-rotted — drop it and re-simulate.
        path.unlink(missing_ok=True)
        if tel is not None:
            tel.counter(
                "repro_cache_corrupt_dropped_total",
                "Disk-cache entries discarded for failing the envelope "
                "check (version, key, or checksum).",
            ).inc()
            tel.counter(
                "repro_cache_misses_total",
                "Disk-cache probes that found no usable entry.",
            ).inc()
        return None
    if tel is not None:
        tel.counter(
            "repro_cache_hits_total",
            "Result-cache hits by tier.",
            labels=("tier",),
        ).inc(tier="disk")
    return result


def _store_disk(key: str, result: SimResult) -> None:
    """Atomically persist one entry: temp file in-dir, then ``os.replace``."""
    if not _disk_enabled():
        return
    directory = _cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        blob = _encode_entry(key, result)
        fd, tmp_name = tempfile.mkstemp(
            dir=directory, prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, _entry_path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        # Service life: when a cache bound is configured, every write is
        # an eviction opportunity (LRU by mtime; the entry just written
        # and any in-flight keys are protected).  No bound -> no-op.
        from repro.serve.eviction import maybe_evict

        maybe_evict(protect_keys=(key,), directory=directory)
        tel = telemetry.maybe()
        if tel is not None:
            tel.counter(
                "repro_cache_stores_total",
                "Result-cache entries persisted to disk.",
            ).inc()
    except Exception:
        # Caching is best-effort; the in-memory result is still valid.
        tel = telemetry.maybe()
        if tel is not None:
            tel.counter(
                "repro_cache_store_errors_total",
                "Best-effort disk-cache writes that failed and were dropped.",
            ).inc()


def run_cached(workload: str, config: SimConfig, n_instructions: int = 40_000) -> SimResult:
    """Simulate ``workload`` under ``config``, reusing cached results.

    Thread-safe and single-flight: if another thread is already simulating
    the same key, this call waits for it instead of duplicating the work.
    """
    key = cache_key(workload, n_instructions, config)
    while True:
        result = _memory_cache.get(key)
        if result is not None:
            tel = telemetry.maybe()
            if tel is not None:
                tel.counter(
                    "repro_cache_hits_total",
                    "Result-cache hits by tier.",
                    labels=("tier",),
                ).inc(tier="memory")
            return result

        with _inflight_lock:
            # Re-check under the lock — a racer may have just finished.
            result = _memory_cache.get(key)
            if result is not None:
                return result
            pending = _inflight.get(key)
            if pending is None:
                _inflight[key] = threading.Event()
                break  # we own the flight
        tel = telemetry.maybe()
        if tel is not None:
            tel.counter(
                "repro_cache_singleflight_joins_total",
                "run_cached calls that joined another thread's in-flight "
                "simulation instead of duplicating it.",
            ).inc()
        pending.wait()

    try:
        result = _load_disk(key)
        if result is None:
            spec = load_workload(workload, n_instructions)
            result = simulate(spec.trace, config, name=workload)
            _store_disk(key, result)
        _memory_cache[key] = result
        return result
    finally:
        with _inflight_lock:
            event = _inflight.pop(key, None)
        if event is not None:
            event.set()


def run_suite(
    workloads: list[str],
    config: SimConfig,
    n_instructions: int = 40_000,
    *,
    jobs: int | None = None,
    progress=None,
) -> dict[str, SimResult]:
    """Run several workloads under one config, in parallel when possible.

    ``jobs`` overrides the worker count (default: ``REPRO_SIM_JOBS`` env
    var, falling back to ``os.cpu_count()``); ``progress`` is an optional
    ``(done, total, job)`` callback.  Results are bit-identical to calling
    :func:`run_cached` serially for each workload.
    """
    from repro.analysis.parallel import ParallelRunner, SimJob

    runner = ParallelRunner(jobs=jobs, progress=progress)
    sim_jobs = [SimJob(name, config, n_instructions) for name in workloads]
    by_key = runner.run(sim_jobs)
    return {job.workload: by_key[job.key] for job in sim_jobs}


def clear_memory_cache() -> int:
    """Drop all in-process cached results; returns the number removed."""
    removed = len(_memory_cache)
    _memory_cache.clear()
    return removed


def clear_disk_cache() -> int:
    """Delete all on-disk cached results (including stray temp files left
    by killed writers); returns the number of cache entries removed."""
    directory = _cache_dir()
    if not directory.exists():
        return 0
    removed = 0
    for path in directory.glob("*.pkl"):
        path.unlink(missing_ok=True)
        removed += 1
    for path in directory.glob(".*.tmp"):
        path.unlink(missing_ok=True)
    # The warm-start index (repro.serve.snapshot) is stale once the
    # entries are gone; drop it so a restart rescans honestly.
    (directory / "cache-index.json").unlink(missing_ok=True)
    return removed


def cache_stats() -> dict:
    """Summary of the cache state for ``repro cache stats``.

    ``disk_entries`` / ``disk_bytes`` come from the same scan the
    eviction bounds enforce (:func:`repro.serve.eviction.scan_entries`) —
    race-tolerant where the old ``path.stat()`` sweep could blow up on a
    concurrently evicted entry — and the configured bounds plus the
    warm-start snapshot state ride along so ``repro cache stats`` shows
    exactly what the eviction policy sees.
    """
    from repro.serve.eviction import resolve_max_bytes, resolve_max_entries, scan_entries
    from repro.serve.snapshot import read_snapshot

    directory = _cache_dir()
    entries = scan_entries(directory)
    temp_files = list(directory.glob(".*.tmp")) if directory.exists() else []
    snapshot = read_snapshot(directory)
    return {
        "directory": str(directory),
        "disk_enabled": _disk_enabled(),
        "disk_entries": len(entries),
        "disk_bytes": sum(entry.size for entry in entries),
        "max_bytes": resolve_max_bytes(),
        "max_entries": resolve_max_entries(),
        "temp_files": len(temp_files),
        "memory_entries": len(_memory_cache),
        "snapshot_entries": None if snapshot is None else len(snapshot),
        "cache_version": CACHE_VERSION,
        "telemetry": lifetime_cache_stats(),
    }


def lifetime_cache_stats() -> dict | None:
    """Process-lifetime hit/miss/eviction rates from the telemetry plane.

    None when ``REPRO_SIM_TELEMETRY`` is off (the disk index above is
    still reported) — the rates only exist while the metrics registry is
    collecting.  Counters that never fired read as 0.
    """
    tel = telemetry.maybe()
    if tel is None:
        return None

    def count(name: str, **labels: str) -> int:
        assert tel is not None  # the early return above proves it
        return int(tel.value(name, **labels) or 0)

    hits_memory = count("repro_cache_hits_total", tier="memory")
    hits_disk = count("repro_cache_hits_total", tier="disk")
    misses = count("repro_cache_misses_total")
    hits = hits_memory + hits_disk
    probes = hits + misses
    return {
        "hits_memory": hits_memory,
        "hits_disk": hits_disk,
        "misses": misses,
        "hit_rate": round(hits / probes, 4) if probes else None,
        "stores": count("repro_cache_stores_total"),
        "store_errors": count("repro_cache_store_errors_total"),
        "evictions": count("repro_cache_evictions_total"),
        "evicted_bytes": count("repro_cache_evicted_bytes_total"),
        "corrupt_dropped": count("repro_cache_corrupt_dropped_total"),
        "singleflight_joins": count("repro_cache_singleflight_joins_total"),
    }


def verify_disk_cache(fix: bool = False) -> dict:
    """Check every on-disk entry's envelope (version + key + checksum).

    Returns ``{"ok": int, "corrupt": [filenames]}``; with ``fix=True``
    corrupt entries are deleted so the next run re-simulates them.
    """
    directory = _cache_dir()
    ok = 0
    corrupt: list[str] = []
    if directory.exists():
        for path in sorted(directory.glob("*.pkl")):
            key = path.stem
            try:
                _decode_entry(key, path.read_bytes())
                ok += 1
            except Exception:
                corrupt.append(path.name)
                if fix:
                    path.unlink(missing_ok=True)
    return {"ok": ok, "corrupt": corrupt}
