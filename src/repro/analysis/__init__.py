"""Analysis utilities: cached simulation running and table rendering.

* :mod:`repro.analysis.runner` — memoised (in-process + on-disk) execution
  of (workload, config) simulation pairs, so experiments and benchmarks
  sharing baselines never re-simulate them.  Disk entries are checksummed
  and written atomically.
* :mod:`repro.analysis.parallel` — the parallel experiment engine:
  schedules deduplicated pending jobs across worker processes and merges
  results back into the caches, bit-identical to the serial path.
* :mod:`repro.analysis.tables` — plain-text rendering of the tables and
  figure series the experiment drivers produce.
* :mod:`repro.analysis.plot` — terminal bar charts / sparklines / series
  plots for figure-style output.
* :mod:`repro.analysis.energy` — relative frontend energy accounting
  (the µ-op cache's power story, and UCP's decode overhead).
* :mod:`repro.analysis.profile` — component-level wall-time profiling of
  one simulation (``repro profile`` on the command line): per-component
  seconds summing exactly to the run's wall time, plus simulation
  throughput (instructions and cycles per second).
* :mod:`repro.analysis.replication` — multi-seed replication with
  Student-t confidence intervals.
"""

from repro.analysis.energy import EnergyWeights, decode_overhead_pct, frontend_energy
from repro.analysis.profile import ProfileReport, ProfileRow, profile_run
from repro.analysis.plot import bar_chart, series_plot, sparkline
from repro.analysis.replication import ReplicationResult, replicate_speedup
from repro.analysis.runner import (
    cache_stats,
    clear_disk_cache,
    clear_memory_cache,
    run_cached,
    run_suite,
    verify_disk_cache,
)
from repro.analysis.parallel import (
    EngineStats,
    ParallelExecutionError,
    ParallelRunner,
    SimJob,
    run_jobs,
)
from repro.analysis.tables import format_series, format_table

__all__ = [
    "run_cached",
    "run_suite",
    "run_jobs",
    "clear_disk_cache",
    "clear_memory_cache",
    "cache_stats",
    "verify_disk_cache",
    "ParallelRunner",
    "ParallelExecutionError",
    "SimJob",
    "EngineStats",
    "format_table",
    "format_series",
    "frontend_energy",
    "decode_overhead_pct",
    "EnergyWeights",
    "bar_chart",
    "sparkline",
    "series_plot",
    "replicate_speedup",
    "ReplicationResult",
    "profile_run",
    "ProfileReport",
    "ProfileRow",
]
