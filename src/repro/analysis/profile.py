"""Component-level wall-time profiler for the simulator hot path.

:func:`profile_run` executes one simulation with the per-cycle component
entry points (backend commit/dispatch, fetch, BPU generation, L1I
prefetch issue, the UCP walker, the idle-skip scan, and the optional
invariant checker) wrapped in ``perf_counter`` closures, and reports how
the run's wall time splits across them.  The wrappers only *measure* —
the simulation itself is bit-identical to an unprofiled run.

Accounting identity
-------------------

The top-level component rows partition the main loop: every row is timed
at its single call site in :meth:`Simulator.run`, so the rows never
overlap and

    sum(component seconds) + other == total wall seconds

holds exactly (``other`` is the clamped non-negative residual: loop
bookkeeping, warm-up snapshotting, and the wrappers' own overhead).
Nested detail rows (µ-op cache lookups, FTQ pushes/pops) are timed
*inside* a top-level component and therefore reported separately — they
are a drill-down, not part of the partition.
"""

from __future__ import annotations

import json
from time import perf_counter

from repro.core.configs import SimConfig
from repro.core.pipeline import SimResult, Simulator
from repro.isa.trace import Trace

#: (row key, simulator attribute holding the component, method name).
#: A ``None`` attribute means the method lives on the Simulator itself.
#: Every entry is called from exactly one site in ``Simulator.run`` —
#: that is what makes the rows a partition of the main loop.
_TOP_LEVEL: list[tuple[str, str | None, str]] = [
    ("idle_skip", None, "_idle_until"),
    ("backend_commit", "backend", "commit"),
    ("backend_dispatch", "backend", "dispatch"),
    ("fetch", "fetch", "tick"),
    ("l1i_prefetch", "hierarchy", "tick_prefetch"),
    ("bpu", "bpu", "generate"),
    ("ucp_walker", "ucp", "tick"),
    ("checker", "checker", "on_cycle"),
]

#: Detail rows timed inside a top-level component (excluded from the
#: sum-to-total identity; pure drill-down).
_DETAIL: list[tuple[str, str, str]] = [
    ("uop_cache_lookup", "uop_cache", "lookup"),
    ("uop_cache_probe", "uop_cache", "probe"),
    ("uop_cache_insert", "uop_cache", "insert"),
    ("ftq_push", "ftq", "push"),
    ("ftq_pop", "ftq", "pop"),
]


class ProfileRow:
    """Accumulated wall time and call count for one wrapped entry point."""

    __slots__ = ("key", "seconds", "calls")

    def __init__(self, key: str) -> None:
        self.key = key
        self.seconds = 0.0
        self.calls = 0

    def as_dict(self) -> dict:
        return {"seconds": self.seconds, "calls": self.calls}

    def __repr__(self) -> str:
        return f"ProfileRow({self.key!r}, {self.seconds:.4f}s, {self.calls} calls)"


class ProfileReport:
    """Wall-time split of one simulation across pipeline components."""

    def __init__(
        self,
        result: SimResult,
        total_seconds: float,
        components: dict[str, ProfileRow],
        details: dict[str, ProfileRow],
        skipped_cycles: int,
        skip_events: int,
    ) -> None:
        self.result = result
        self.total_seconds = total_seconds
        self.components = components
        self.details = details
        self.skipped_cycles = skipped_cycles
        self.skip_events = skip_events

    @property
    def accounted_seconds(self) -> float:
        return sum(row.seconds for row in self.components.values())

    @property
    def other_seconds(self) -> float:
        """Residual main-loop time: clamped so the partition always sums up."""
        return max(0.0, self.total_seconds - self.accounted_seconds)

    @property
    def instructions_per_second(self) -> float:
        if self.total_seconds <= 0.0:
            return 0.0
        return self.result.instructions / self.total_seconds

    @property
    def cycles_per_second(self) -> float:
        if self.total_seconds <= 0.0:
            return 0.0
        return self.result.cycles / self.total_seconds

    def as_dict(self) -> dict:
        return {
            "name": self.result.name,
            "total_seconds": self.total_seconds,
            "instructions": self.result.instructions,
            "cycles": self.result.cycles,
            "instructions_per_second": self.instructions_per_second,
            "cycles_per_second": self.cycles_per_second,
            "skipped_cycles": self.skipped_cycles,
            "skip_events": self.skip_events,
            "components": {key: row.as_dict() for key, row in self.components.items()},
            "other_seconds": self.other_seconds,
            "details": {key: row.as_dict() for key, row in self.details.items()},
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [
            f"profile: {self.result.name}",
            f"  wall time        {self.total_seconds:.3f}s",
            f"  instructions     {self.result.instructions}"
            f"  ({self.instructions_per_second:,.0f}/s)",
            f"  cycles           {self.result.cycles}"
            f"  ({self.cycles_per_second:,.0f}/s)",
            f"  skipped cycles   {self.skipped_cycles}"
            f"  ({self.skip_events} jumps)",
            "",
            f"  {'component':<18s} {'seconds':>9s} {'share':>7s} {'calls':>10s}",
        ]
        total = self.total_seconds or 1.0
        rows = sorted(
            self.components.values(), key=lambda row: row.seconds, reverse=True
        )
        for row in rows:
            lines.append(
                f"  {row.key:<18s} {row.seconds:>9.4f} "
                f"{100.0 * row.seconds / total:>6.1f}% {row.calls:>10d}"
            )
        lines.append(
            f"  {'other':<18s} {self.other_seconds:>9.4f} "
            f"{100.0 * self.other_seconds / total:>6.1f}% {'-':>10s}"
        )
        if self.details:
            lines.append("")
            lines.append(f"  {'detail (nested)':<18s} {'seconds':>9s} {'':>7s} {'calls':>10s}")
            for key in sorted(self.details):
                row = self.details[key]
                lines.append(
                    f"  {row.key:<18s} {row.seconds:>9.4f} {'':>7s} {row.calls:>10d}"
                )
        return "\n".join(lines)


def _wrap(owner: object, method: str, row: ProfileRow) -> None:
    """Shadow ``owner.method`` with a timing closure on the instance."""
    unwrapped = getattr(owner, method)

    def timed(*args, **kwargs):
        start = perf_counter()
        try:
            return unwrapped(*args, **kwargs)
        finally:
            row.seconds += perf_counter() - start
            row.calls += 1

    setattr(owner, method, timed)


def profile_run(
    trace: Trace,
    config: SimConfig,
    name: str | None = None,
    check: bool | None = None,
    idle_skip: bool | None = None,
) -> ProfileReport:
    """Simulate ``trace`` under ``config`` with component timing enabled.

    Semantics are identical to :func:`repro.core.simulate` — the wrappers
    observe, they do not alter — so profiling a run is always safe.
    """
    sim = Simulator(trace, config, name=name, check=check, idle_skip=idle_skip)

    components: dict[str, ProfileRow] = {}
    for key, attribute, method in _TOP_LEVEL:
        owner = sim if attribute is None else getattr(sim, attribute)
        if owner is None:  # e.g. no UCP engine / checker disabled
            continue
        row = components.setdefault(key, ProfileRow(key))
        _wrap(owner, method, row)

    details: dict[str, ProfileRow] = {}
    for key, attribute, method in _DETAIL:
        owner = getattr(sim, attribute)
        if owner is None:
            continue
        row = details.setdefault(key, ProfileRow(key))
        _wrap(owner, method, row)

    start = perf_counter()
    result = sim.run()
    total = perf_counter() - start

    return ProfileReport(
        result=result,
        total_seconds=total,
        components=components,
        details=details,
        skipped_cycles=sim.skipped_cycles,
        skip_events=sim.skip_events,
    )
