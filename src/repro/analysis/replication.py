"""Multi-seed replication and confidence intervals.

The suite's workloads are single seeds of stochastic generators; any
speedup measured on one seed carries generator noise.  This module
replicates a workload across seeds and reports mean speedup with a
Student-t confidence interval, so experiments can state "UCP gains
X% ± Y" instead of a point estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

import numpy as np
from scipy import stats as scipy_stats

from repro.core.configs import SimConfig
from repro.core.pipeline import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.suite import SUITE


@dataclass
class ReplicationResult:
    workload: str
    seeds: list[int]
    speedups_pct: list[float]

    @property
    def mean(self) -> float:
        return float(np.mean(self.speedups_pct))

    @property
    def std(self) -> float:
        return float(np.std(self.speedups_pct, ddof=1)) if len(self.speedups_pct) > 1 else 0.0

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Student-t interval for the mean speedup."""
        n = len(self.speedups_pct)
        if n < 2:
            return (self.mean, self.mean)
        sem = self.std / np.sqrt(n)
        t = scipy_stats.t.ppf((1 + level) / 2, df=n - 1)
        return (self.mean - t * sem, self.mean + t * sem)

    def significant(self, level: float = 0.95) -> bool:
        """True when the CI excludes zero (the speedup is not noise)."""
        low, high = self.confidence_interval(level)
        return low > 0 or high < 0

    def __repr__(self) -> str:
        low, high = self.confidence_interval()
        return (
            f"ReplicationResult({self.workload!r}, n={len(self.seeds)}, "
            f"mean={self.mean:.2f}% CI95=[{low:.2f}, {high:.2f}])"
        )


def replicate_speedup(
    workload: str,
    config: SimConfig,
    reference: SimConfig,
    n_seeds: int = 5,
    n_instructions: int = 15_000,
) -> ReplicationResult:
    """Measure config-vs-reference speedup across generator seeds.

    Each replicate regenerates the workload's program *and* walk with a
    shifted seed, so both program structure and dynamic behaviour vary.
    """
    if workload not in SUITE:
        raise KeyError(f"unknown workload {workload!r}")
    base_config = SUITE[workload]
    seeds = [base_config.seed + 1000 * k for k in range(n_seeds)]
    speedups = []
    for seed in seeds:
        wl = dc_replace(base_config, seed=seed, n_instructions=n_instructions)
        trace = generate_trace(wl)
        fast = simulate(trace, config, name=f"{workload}@{seed}")
        slow = simulate(trace, reference, name=f"{workload}@{seed}")
        speedups.append(100.0 * (fast.ipc / slow.ipc - 1.0))
    return ReplicationResult(workload, seeds, speedups)
