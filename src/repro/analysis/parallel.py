"""Parallel experiment execution engine.

Every figure reproduction fans out dozens of independent
``(workload, config, n_instructions)`` simulations.  :class:`ParallelRunner`
schedules the deduplicated set of *pending* jobs (those not already in the
in-memory or on-disk cache) across a :class:`concurrent.futures.
ProcessPoolExecutor` and merges worker results back into both cache
layers, so the parallel path is bit-identical to running
:func:`repro.analysis.runner.run_cached` serially — same seeds, same
stats — just faster on multi-core machines.

Worker count resolution order:

1. explicit ``jobs=`` argument;
2. the ``REPRO_SIM_JOBS`` environment variable;
3. ``os.cpu_count()``.

``jobs=1`` (or a single pending job, or a platform without usable
``multiprocessing`` start methods) falls back to a serial in-process loop
— no pool, no pickling, identical results.

Example
-------
>>> from repro.analysis.parallel import ParallelRunner, SimJob
>>> runner = ParallelRunner(jobs=4)
>>> results = runner.run([SimJob("fp_01", SimConfig(), 20_000)])
>>> runner.stats.counters["jobs_simulated"]
1
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.analysis import runner as _runner
from repro.common.stats import StatBlock, TimingSummary
from repro.core.configs import SimConfig
from repro.core.pipeline import SimResult, simulate
from repro.observe import telemetry
from repro.workloads.suite import load_workload

__all__ = [
    "SimJob",
    "EngineStats",
    "JobTimeoutError",
    "ParallelExecutionError",
    "ParallelRunner",
    "resolve_job_count",
    "resolve_job_timeout",
    "run_jobs",
]


#: EngineStats counters mirrored into the telemetry registry per run
#: (delta-based, so repeated runs accumulate process-lifetime totals).
_MIRRORED_COUNTERS = (
    "jobs_requested",
    "jobs_deduped",
    "jobs_from_memory",
    "jobs_from_disk",
    "jobs_simulated",
    "jobs_failed",
    "jobs_timed_out",
)


@dataclass(frozen=True)
class SimJob:
    """One unit of work: simulate ``workload`` under ``config``."""

    workload: str
    config: SimConfig
    n_instructions: int = 40_000

    @property
    def key(self) -> str:
        return _runner.cache_key(self.workload, self.n_instructions, self.config)

    def describe(self) -> str:
        return f"{self.workload}@{self.n_instructions}"


@dataclass
class JobTiming:
    """Wall-clock timing of one executed (non-cache-hit) job."""

    job: SimJob
    seconds: float


class EngineStats:
    """Per-run counters plus job timing / throughput accounting.

    ``counters`` is a :class:`repro.common.stats.StatBlock` with:

    * ``jobs_requested`` — jobs passed to :meth:`ParallelRunner.run`;
    * ``jobs_deduped`` — duplicates folded by single-flight keying;
    * ``jobs_from_memory`` / ``jobs_from_disk`` — cache hits;
    * ``jobs_simulated`` — jobs actually executed this run;
    * ``jobs_failed`` — jobs whose worker raised;
    * ``jobs_timed_out`` — jobs abandoned past the per-job timeout
      (counted in ``jobs_failed`` too).
    """

    def __init__(self) -> None:
        self.counters = StatBlock("parallel_engine")
        self.timings: list[JobTiming] = []
        self.wall_seconds: float = 0.0

    def timing_summary(self) -> TimingSummary:
        return TimingSummary.from_samples(t.seconds for t in self.timings)

    @property
    def throughput(self) -> float:
        """Simulated jobs per wall-clock second (0.0 when nothing ran)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.counters["jobs_simulated"] / self.wall_seconds

    def render(self) -> str:
        summary = self.timing_summary()
        c = self.counters
        return (
            f"jobs: {c['jobs_requested']} requested, "
            f"{c['jobs_deduped']} deduped, "
            f"{c['jobs_from_memory'] + c['jobs_from_disk']} cached, "
            f"{c['jobs_simulated']} simulated, {c['jobs_failed']} failed | "
            f"wall {self.wall_seconds:.2f}s, "
            f"{self.throughput:.2f} jobs/s, "
            f"per-job mean {summary.mean:.2f}s p95 {summary.p95:.2f}s"
        )


class ParallelExecutionError(RuntimeError):
    """One or more workers failed; successful results are already cached."""

    def __init__(self, failures: list[tuple[SimJob, BaseException]]) -> None:
        self.failures = failures
        detail = "; ".join(
            f"{job.describe()}: {type(error).__name__}: {error}"
            for job, error in failures
        )
        super().__init__(f"{len(failures)} simulation job(s) failed: {detail}")


class JobTimeoutError(RuntimeError):
    """A pool job ran past its per-job timeout and was abandoned.

    The worker executing it may be wedged (that is what the timeout is
    for); the runner kills the pool's processes after draining the other
    jobs, so a poisoned config cannot leak a hung worker past the run.
    """

    def __init__(self, job: SimJob, timeout: float) -> None:
        self.job = job
        self.timeout = timeout
        super().__init__(
            f"{job.describe()} exceeded the {timeout:.1f}s per-job timeout"
        )


def resolve_job_count(jobs: int | None = None) -> int:
    """Worker count: explicit arg > ``REPRO_SIM_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_SIM_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def resolve_job_timeout(timeout: float | None = None) -> float | None:
    """Per-job timeout in seconds: explicit arg > ``REPRO_SIM_JOB_TIMEOUT``.

    ``None`` (the default) and non-positive or unparsable values mean "no
    timeout" — the engine's historical behaviour.
    """
    if timeout is None:
        env = os.environ.get("REPRO_SIM_JOB_TIMEOUT", "").strip()
        if env:
            try:
                timeout = float(env)
            except ValueError:
                timeout = None
    if timeout is None or timeout <= 0:
        return None
    return timeout


def _pool_context() -> multiprocessing.context.BaseContext | None:
    """Pick a start method, preferring fork (cheap, inherits warm state)."""
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "spawn", "forkserver"):
        if method in methods:
            return multiprocessing.get_context(method)
    return None


def _worker_init(parent_pid: int) -> None:
    """Worker-process initializer: exit if the parent dies.

    A SIGKILLed parent cannot shut the pool down, and every worker holds
    the call-queue pipe open, so idle workers would otherwise block on it
    forever.  A watchdog thread notices the re-parenting and exits; the
    atomic cache writes make dying mid-job harmless.
    """

    def watch() -> None:
        while os.getppid() == parent_pid:
            time.sleep(1.0)
        os._exit(0)

    threading.Thread(target=watch, daemon=True).start()


def _execute_job(workload: str, config: SimConfig, n_instructions: int):
    """Worker entry point: simulate one job and persist it to disk.

    Runs in the worker process.  The worker writes the entry itself
    (atomically) so completed work survives even if the parent dies before
    merging, and returns ``(result, seconds)`` for the parent's caches and
    timing stats.
    """
    start = time.perf_counter()  # lint-ok: SIM002 worker timing telemetry, never touches results
    result = _runner._load_disk(_runner.cache_key(workload, n_instructions, config))
    if result is None:
        spec = load_workload(workload, n_instructions)
        result = simulate(spec.trace, config, name=workload)
        _runner._store_disk(
            _runner.cache_key(workload, n_instructions, config), result
        )
    return result, time.perf_counter() - start  # lint-ok: SIM002 timing telemetry


@dataclass
class _RunState:
    """Mutable bookkeeping for one :meth:`ParallelRunner.run` call."""

    total: int
    done: int = 0
    results: dict[str, SimResult] = field(default_factory=dict)
    failures: list[tuple[SimJob, BaseException]] = field(default_factory=list)


class ParallelRunner:
    """Schedules deduplicated simulation jobs across worker processes.

    Parameters
    ----------
    jobs:
        Worker count; ``None`` resolves via :func:`resolve_job_count`.
    progress:
        Optional callback ``progress(done, total, job)`` invoked in the
        parent process as each job resolves (from cache or from a worker).
    job_timeout:
        Per-job wall-clock budget in seconds, measured from dispatch to
        the pool; ``None`` resolves via :func:`resolve_job_timeout`
        (``REPRO_SIM_JOB_TIMEOUT``, default: no timeout).  A job past its
        budget fails with :class:`JobTimeoutError` while the remaining
        jobs finish; the pool's processes are then killed rather than
        joined, so a wedged worker cannot hang the run.  The serial
        (``jobs=1``) fallback cannot interrupt an in-process simulation
        and ignores the timeout.
    """

    def __init__(
        self,
        jobs: int | None = None,
        progress=None,
        job_timeout: float | None = None,
    ) -> None:
        self.jobs = resolve_job_count(jobs)
        self.progress = progress
        self.job_timeout = resolve_job_timeout(job_timeout)
        self.stats = EngineStats()

    # -- public API --------------------------------------------------------

    def run(self, jobs: list[SimJob]) -> dict[str, SimResult]:
        """Resolve every job, returning ``{cache_key: SimResult}``.

        Cache hits are returned directly; the remaining unique jobs are
        simulated (in parallel when ``self.jobs > 1``) and merged into the
        in-memory and on-disk caches.  If any worker fails, the successes
        are still cached and a :class:`ParallelExecutionError` is raised.
        """
        start = time.perf_counter()  # lint-ok: SIM002 wall-clock telemetry for run reports
        before = {name: self.stats.counters[name] for name in _MIRRORED_COUNTERS}
        timings_before = len(self.stats.timings)
        try:
            self.stats.counters.add("jobs_requested", len(jobs))

            # Single-flight dedup: two figures requesting the same key in one
            # batch (or the same key twice in one suite) simulate once.
            unique: dict[str, SimJob] = {}
            for job in jobs:
                if job.key in unique:
                    self.stats.counters.add("jobs_deduped")
                else:
                    unique[job.key] = job

            state = _RunState(total=len(unique))
            pending: list[SimJob] = []
            for key, job in unique.items():
                cached = _runner._memory_cache.get(key)
                if cached is not None:
                    self.stats.counters.add("jobs_from_memory")
                    self._resolve(state, job, cached)
                    continue
                cached = _runner._load_disk(key)
                if cached is not None:
                    self.stats.counters.add("jobs_from_disk")
                    _runner._memory_cache[key] = cached
                    self._resolve(state, job, cached)
                    continue
                pending.append(job)

            if pending:
                context = _pool_context()
                if self._effective_workers(len(pending)) == 1 or context is None:
                    self._run_serial(state, pending)
                else:
                    self._run_pool(state, pending, context)
        finally:
            self.stats.wall_seconds += time.perf_counter() - start  # lint-ok: SIM002 timing telemetry
            self._mirror_telemetry(before, timings_before)

        if state.failures:
            raise ParallelExecutionError(state.failures)
        return state.results

    def _mirror_telemetry(
        self, before: dict[str, int], timings_before: int
    ) -> None:
        """Mirror this run's counter deltas into the telemetry registry.

        The per-run :class:`EngineStats` StatBlock stays authoritative
        (and deterministic); the registry gets process-lifetime totals so
        ``repro serve --metrics-port`` / ``repro top`` can see the engine
        without reaching into runner objects.
        """
        tel = telemetry.maybe()
        if tel is None:
            return
        family = tel.counter(
            "repro_engine_jobs_total",
            "ParallelRunner job outcomes (process lifetime).",
            labels=("outcome",),
        )
        for name in _MIRRORED_COUNTERS:
            delta = self.stats.counters[name] - before[name]
            if delta > 0:
                family.inc(delta, outcome=name.removeprefix("jobs_"))
        seconds = tel.histogram(
            "repro_engine_job_seconds",
            "Wall seconds per executed (non-cache-hit) engine job.",
        )
        for timing in self.stats.timings[timings_before:]:
            seconds.observe(timing.seconds)

    # -- internals ---------------------------------------------------------

    def _effective_workers(self, n_pending: int) -> int:
        return min(self.jobs, n_pending)

    def _resolve(self, state: _RunState, job: SimJob, result: SimResult) -> None:
        state.results[job.key] = result
        state.done += 1
        if self.progress is not None:
            self.progress(state.done, state.total, job)

    def _merge(self, state: _RunState, job: SimJob, result: SimResult) -> None:
        """Merge a freshly simulated result into both cache layers."""
        _runner._memory_cache[job.key] = result
        # The worker already persisted it; cover the serial path and any
        # worker whose write failed.  Atomic replace makes this re-write
        # race-free even if another process is storing the same key.
        if _runner._load_disk(job.key) is None:
            _runner._store_disk(job.key, result)
        self._resolve(state, job, result)

    def _run_serial(self, state: _RunState, pending: list[SimJob]) -> None:
        """In-process fallback: identical semantics, no pool overhead."""
        for job in pending:
            try:
                result, seconds = _execute_job(
                    job.workload, job.config, job.n_instructions
                )
            except Exception as error:
                self.stats.counters.add("jobs_failed")
                state.failures.append((job, error))
                continue
            self.stats.counters.add("jobs_simulated")
            self.stats.timings.append(JobTiming(job, seconds))
            self._merge(state, job, result)

    def _run_pool(
        self,
        state: _RunState,
        pending: list[SimJob],
        context: multiprocessing.context.BaseContext,
    ) -> None:
        workers = self._effective_workers(len(pending))
        timeout = self.job_timeout
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(os.getpid(),),
        )
        poisoned = False
        try:
            # Submit at most ``workers`` jobs at a time so a dispatched
            # future starts executing immediately — that makes "time since
            # dispatch" the right clock for the per-job timeout.
            queue = list(reversed(pending))
            futures: dict = {}
            deadlines: dict = {}
            # Futures still in flight, insertion-ordered (dispatch order).
            outstanding: dict = {}

            def submit_next() -> None:
                job = queue.pop()
                future = pool.submit(
                    _execute_job, job.workload, job.config, job.n_instructions
                )
                futures[future] = job
                outstanding[future] = None
                if timeout is not None:
                    deadlines[future] = time.monotonic() + timeout  # lint-ok: SIM002 timeout deadline bookkeeping

            while queue and len(outstanding) < workers:
                submit_next()
            while outstanding:
                if timeout is not None:
                    slack = min(deadlines[f] for f in outstanding) - time.monotonic()  # lint-ok: SIM002 timeout deadline bookkeeping
                    completed, _ = wait(
                        list(outstanding),
                        timeout=max(slack, 0.0),
                        return_when=FIRST_COMPLETED,
                    )
                else:
                    completed, _ = wait(
                        list(outstanding), return_when=FIRST_COMPLETED
                    )
                if not completed and timeout is not None:
                    now = time.monotonic()  # lint-ok: SIM002 timeout deadline bookkeeping
                    for future in [
                        f for f in outstanding if deadlines.get(f, 0.0) <= now
                    ]:
                        if future.done():
                            continue  # finished at the wire: next wait() returns it
                        # Running (or queued behind a wedged worker) —
                        # either way it missed its budget: abandon it.  The
                        # hung process is killed after the loop drains.
                        future.cancel()
                        outstanding.pop(future, None)
                        poisoned = True
                        job = futures[future]
                        self.stats.counters.add("jobs_failed")
                        self.stats.counters.add("jobs_timed_out")
                        state.failures.append((job, JobTimeoutError(job, timeout)))
                        if queue:
                            submit_next()
                for future in sorted(completed, key=lambda f: futures[f].key):
                    outstanding.pop(future, None)
                    deadlines.pop(future, None)
                    job = futures[future]
                    try:
                        result, seconds = future.result()
                    except Exception as error:
                        self.stats.counters.add("jobs_failed")
                        state.failures.append((job, error))
                    else:
                        self.stats.counters.add("jobs_simulated")
                        self.stats.timings.append(JobTiming(job, seconds))
                        self._merge(state, job, result)
                    if queue:
                        submit_next()
        finally:
            if poisoned:
                # At least one worker is presumed wedged: do not join it.
                # Snapshot the process table first — the executor's
                # management thread nulls it out during teardown.
                processes = list(
                    (getattr(pool, "_processes", None) or {}).values()
                )
                pool.shutdown(wait=False, cancel_futures=True)
                for process in processes:
                    try:
                        process.terminate()
                    except Exception:
                        pass
            else:
                pool.shutdown(wait=True)


def run_jobs(
    jobs: list[SimJob],
    *,
    workers: int | None = None,
    progress=None,
    job_timeout: float | None = None,
) -> dict[str, SimResult]:
    """One-shot convenience wrapper around :class:`ParallelRunner`."""
    return ParallelRunner(
        jobs=workers, progress=progress, job_timeout=job_timeout
    ).run(jobs)
