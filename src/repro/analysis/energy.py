"""Frontend energy accounting.

The µ-op cache exists "primarily for power savings" (paper Sections I/II):
a stream-mode hit bypasses the L1I read *and* the decoders.  UCP spends
some of that back — its alternate decoders re-decode prefetched lines
(the paper reports UCP increases decoded instructions by ~25.5%,
Section VI-F) — so an energy view is needed to judge the trade.

This module converts a :class:`~repro.core.pipeline.SimResult`'s event
counts into a relative frontend energy estimate.  Weights are *relative
units per event* (decode of one instruction = 1.0), drawn from the usual
frontend energy folklore: decoding dominates, array reads are cheaper.
Absolute joules are out of scope — the point is comparing configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import SimResult


@dataclass(frozen=True)
class EnergyWeights:
    """Relative energy per frontend event (decode of one instr = 1.0)."""

    decode_per_instr: float = 1.0
    uop_cache_read_per_uop: float = 0.15
    uop_cache_write_per_entry: float = 0.4
    l1i_read_per_access: float = 0.6
    l1i_miss_extra: float = 3.0
    btb_read_per_branch: float = 0.1
    bp_lookup_per_branch: float = 0.2
    mode_switch: float = 0.3
    alt_decode_per_uop: float = 1.0  # UCP's dedicated decoders
    prefetch_request: float = 0.5


@dataclass
class EnergyReport:
    """Per-component frontend energy of one simulation window."""

    components: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def per_instruction(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return self.total / instructions

    def share(self, component: str) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return self.components.get(component, 0.0) / total


def frontend_energy(result: SimResult, weights: EnergyWeights | None = None) -> EnergyReport:
    """Estimate the relative frontend energy of a simulation window."""
    weights = weights or EnergyWeights()
    window = result.window
    report = EnergyReport()
    components = report.components

    components["decode"] = window.get("uops_decode", 0) * weights.decode_per_instr
    components["uop_cache_read"] = (
        window.get("uops_uop", 0) * weights.uop_cache_read_per_uop
    )
    components["uop_cache_write"] = (
        window.get("insertions", 0) * weights.uop_cache_write_per_entry
    )
    components["l1i"] = (
        window.get("l1i_demand_accesses", 0) * weights.l1i_read_per_access
        + window.get("l1i_demand_misses", 0) * weights.l1i_miss_extra
    )
    branches = window.get("cond_branches", 0) + window.get("indirect_branches", 0)
    components["btb"] = branches * weights.btb_read_per_branch
    components["branch_predictor"] = branches * weights.bp_lookup_per_branch
    components["mode_switches"] = window.get("mode_switches", 0) * weights.mode_switch
    components["alt_decode"] = (
        window.get("ucp_uops_decoded", 0) * weights.alt_decode_per_uop
    )
    components["prefetch"] = (
        window.get("ucp_l1i_prefetches", 0) + window.get("prefetches_issued", 0)
    ) * weights.prefetch_request
    return report


def decode_overhead_pct(ucp_result: SimResult, base_result: SimResult) -> float:
    """Extra decoded instructions of UCP over baseline, in percent.

    The paper quotes ~25.5% (Section VI-F) as the argument that dedicated
    alternate decoders have moderate dynamic-energy impact.
    """
    base_decoded = base_result.window.get("uops_decode", 0)
    if base_decoded == 0:
        return 0.0
    ucp_decoded = ucp_result.window.get("uops_decode", 0) + ucp_result.window.get(
        "ucp_uops_decoded", 0
    )
    return 100.0 * (ucp_decoded / base_decoded - 1.0)
