"""Plain-text rendering of experiment tables and figure series.

Every experiment driver returns rows of (label, value...) tuples; these
helpers format them the way the paper's artifact prints its result tables.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned fixed-width table."""
    rendered_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered_rows)) if rendered_rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    series: dict[str, Sequence[float]],
    x_labels: Sequence[str] | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render one or more named series side by side (a text 'figure')."""
    names = list(series)
    length = max((len(values) for values in series.values()), default=0)
    labels = list(x_labels) if x_labels is not None else [str(i) for i in range(length)]
    headers = ["x"] + names
    rows = []
    for i in range(length):
        row: list[object] = [labels[i] if i < len(labels) else str(i)]
        for name in names:
            values = series[name]
            row.append(float(values[i]) if i < len(values) else "")
        rows.append(row)
    return format_table(title, headers, rows, float_format=float_format)
