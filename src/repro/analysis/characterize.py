"""Workload characterization: the Section III-A table for any trace.

The paper motivates UCP with a datacenter workload characterization —
instruction footprints versus µ-op cache reach, branch mix, and
conditional MPKI (Section III).  This module computes the same summary
for *any* resolvable workload, built-in or ingested, so an imported
real trace can be placed on the paper's axes before spending simulation
time on it:

* **footprint** — static instructions / code KB / I-cache lines touched,
  straight from the trace columns;
* **branch mix** — per-kilo-instruction rates of every branch class plus
  the conditional taken rate;
* **performance** — baseline-config IPC, µ-op cache hit rate and
  conditional MPKI via :func:`repro.analysis.runner.run_cached` (shared
  with every experiment, so characterizing a workload warms the same
  result cache the figures use).

``repro ingest characterize`` and the ``repro metrics --json`` payload
are thin wrappers over :func:`characterize` / :func:`trace_profile`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.instruction import BranchClass
from repro.isa.trace import Trace

__all__ = [
    "Characterization",
    "characterize",
    "characterize_many",
    "format_characterization",
    "trace_profile",
]

_MIX_CLASSES = (
    ("cond_pki", (BranchClass.COND_DIRECT,)),
    ("call_pki", (BranchClass.CALL_DIRECT, BranchClass.CALL_INDIRECT)),
    ("return_pki", (BranchClass.RETURN,)),
    (
        "indirect_pki",
        (BranchClass.CALL_INDIRECT, BranchClass.INDIRECT, BranchClass.RETURN),
    ),
)


def trace_profile(trace: Trace) -> dict[str, float | int]:
    """Footprint and branch-mix summary of one trace (no simulation)."""
    stats = trace.stats()
    kilo = max(1, len(trace)) / 1000.0
    profile: dict[str, float | int] = {
        "instructions": stats.instructions,
        "static_instructions": stats.static_instructions,
        "static_code_kb": round(stats.static_code_bytes / 1024.0, 2),
        "cache_lines_touched": stats.cache_lines_touched,
        "branch_pki": round(stats.branches / kilo, 2),
        "taken_rate": round(stats.conditional_taken_rate, 4),
    }
    for key, classes in _MIX_CLASSES:
        mask = np.isin(trace.branch_classes, [np.uint8(c) for c in classes])
        profile[key] = round(float(mask.sum()) / kilo, 2)
    return profile


@dataclass(frozen=True)
class Characterization:
    """One workload's row in the characterization table."""

    workload: str
    instructions: int
    static_code_kb: float
    cache_lines_touched: int
    branch_pki: float
    cond_pki: float
    call_pki: float
    return_pki: float
    indirect_pki: float
    taken_rate: float
    # Baseline-simulation metrics; None when simulation was skipped.
    ipc: float | None = None
    uop_hit_rate: float | None = None
    cond_mpki: float | None = None

    def as_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "instructions": self.instructions,
            "static_code_kb": self.static_code_kb,
            "cache_lines_touched": self.cache_lines_touched,
            "branch_pki": self.branch_pki,
            "cond_pki": self.cond_pki,
            "call_pki": self.call_pki,
            "return_pki": self.return_pki,
            "indirect_pki": self.indirect_pki,
            "taken_rate": self.taken_rate,
            "ipc": self.ipc,
            "uop_hit_rate": self.uop_hit_rate,
            "cond_mpki": self.cond_mpki,
        }


def characterize(
    workload: str, n_instructions: int = 20_000, simulate: bool = True
) -> Characterization:
    """Characterize one workload (suite or ingested) at ``n_instructions``.

    With ``simulate=True`` the baseline configuration is run through the
    shared result cache, so the IPC / hit-rate / MPKI columns are free
    when the figures already ran (and warm the cache when they haven't).
    """
    from repro.workloads.suite import load_workload

    trace = load_workload(workload, n_instructions).trace
    profile = trace_profile(trace)
    ipc = uop_hit_rate = cond_mpki = None
    if simulate:
        from repro.analysis.runner import run_cached
        from repro.core.configs import SimConfig

        result = run_cached(workload, SimConfig(), len(trace))
        ipc = round(result.ipc, 4)
        uop_hit_rate = round(result.uop_hit_rate, 2)
        cond_mpki = round(result.cond_mpki, 3)
    return Characterization(
        workload=workload,
        instructions=int(profile["instructions"]),
        static_code_kb=float(profile["static_code_kb"]),
        cache_lines_touched=int(profile["cache_lines_touched"]),
        branch_pki=float(profile["branch_pki"]),
        cond_pki=float(profile["cond_pki"]),
        call_pki=float(profile["call_pki"]),
        return_pki=float(profile["return_pki"]),
        indirect_pki=float(profile["indirect_pki"]),
        taken_rate=float(profile["taken_rate"]),
        ipc=ipc,
        uop_hit_rate=uop_hit_rate,
        cond_mpki=cond_mpki,
    )


def characterize_many(
    workloads: list[str], n_instructions: int = 20_000, simulate: bool = True
) -> list[Characterization]:
    """Characterize several workloads (rows in input order)."""
    return [characterize(name, n_instructions, simulate) for name in workloads]


def format_characterization(rows: list[Characterization]) -> str:
    """Render characterization rows as the standard experiment table."""
    from repro.analysis.tables import format_table

    def _opt(value: float | None, fmt: str) -> str:
        return "-" if value is None else format(value, fmt)

    table_rows = [
        (
            row.workload,
            f"{row.static_code_kb:.0f}KB",
            row.cache_lines_touched,
            f"{row.branch_pki:.0f}",
            f"{row.cond_pki:.0f}",
            f"{row.call_pki:.0f}",
            f"{row.indirect_pki:.0f}",
            f"{row.taken_rate:.2f}",
            _opt(row.ipc, ".3f"),
            _opt(row.uop_hit_rate, ".1f"),
            _opt(row.cond_mpki, ".2f"),
        )
        for row in rows
    ]
    return format_table(
        "Workload characterization (baseline config)",
        [
            "workload", "code", "lines", "br PKI", "cond", "call",
            "ind", "taken", "IPC", "uop hit", "MPKI",
        ],
        table_rows,
    )
