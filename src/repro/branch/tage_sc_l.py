"""TAGE-SC-L: the combined conditional branch predictor of the baseline.

Prediction chain (as in Seznec's CBP-5 predictor):

1. TAGE produces a prediction with HitBank/AltBank/bimodal provenance.
2. If the loop predictor has a *confident* entry for the branch, it
   overrides TAGE.
3. The statistical corrector computes its weighted sum (which includes the
   intermediate prediction's vote) and overrides when it confidently
   disagrees.

Every prediction carries its :class:`Provider` — which component had the
final word — and the provider's raw confidence value.  That provenance is
exactly what the paper's Fig. 6/7 measure and what TAGE-Conf / UCP-Conf
classify on (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.branch.loop import LoopPredictor, LoopPrediction
from repro.branch.sc import SCHistories, SCPrediction, StatisticalCorrector
from repro.branch.tage import TAGE, TageConfig, TageHistories, TagePrediction


class Provider(Enum):
    """Which component provided the final direction prediction."""

    BIMODAL = "bimodal"
    BIMODAL_1IN8 = "bimodal(>1in8)"  # bimodal with a miss in its last 8
    HITBANK = "hitbank"
    ALTBANK = "altbank"
    LOOP = "loop"
    SC = "sc"


@dataclass(frozen=True)
class TageScLConfig:
    """Geometry of the combined predictor."""

    tage: TageConfig = TageConfig()
    loop_size_bits: int = 6
    sc_size_bits: int = 10
    sc_use_threshold: int = 20

    @classmethod
    def small(cls) -> "TageScLConfig":
        """The ~8KB-class Alt-BP geometry (paper Section IV-F)."""
        return cls(tage=TageConfig.small(), loop_size_bits=4, sc_size_bits=7)

    @property
    def storage_kb(self) -> float:
        """Approximate storage in KB (dominated by the TAGE tables)."""
        sc_bits = 6 * 6 * (1 << self.sc_size_bits)
        loop_bits = (1 << self.loop_size_bits) * 52
        return (self.tage.storage_bits + sc_bits + loop_bits) / 8192


class TageScLHistories:
    """Joint history bundle for the TAGE and SC components.

    UCP's Alt-BP keeps two of these (predicted-path and alternate-path);
    :meth:`copy_from` is the resynchronisation the paper describes when a
    new alternate path starts.
    """

    def __init__(self, tage: TageHistories, sc: SCHistories) -> None:
        self.tage = tage
        self.sc = sc

    def push(self, pc: int, taken: bool) -> None:
        self.tage.push(pc, taken)
        self.sc.push(taken)

    def copy_from(self, other: "TageScLHistories") -> None:
        self.tage.copy_from(other.tage)
        self.sc.copy_from(other.sc)


class TageScLPrediction:
    """Combined prediction with full per-component provenance."""

    __slots__ = ("pc", "taken", "provider", "tage", "loop", "sc", "intermediate_taken")

    def __init__(
        self,
        pc: int,
        taken: bool,
        provider: Provider,
        tage: TagePrediction,
        loop: LoopPrediction,
        sc: SCPrediction,
        intermediate_taken: bool,
    ) -> None:
        self.pc = pc
        self.taken = taken
        self.provider = provider
        self.tage = tage
        self.loop = loop
        self.sc = sc
        self.intermediate_taken = intermediate_taken

    @property
    def provider_value(self) -> int:
        """The provider's raw confidence value (counter or SC sum)."""
        if self.provider is Provider.SC:
            return self.sc.lsum
        if self.provider is Provider.LOOP:
            return self.loop.confidence
        return self.tage.provider_ctr


class TageScL:
    """The full TAGE-SC-L predictor with provenance reporting."""

    def __init__(self, config: TageScLConfig | None = None) -> None:
        self.config = config or TageScLConfig()
        self.tage = TAGE(self.config.tage)
        self.loop = LoopPredictor(self.config.loop_size_bits)
        self.sc = StatisticalCorrector(
            size_bits=self.config.sc_size_bits,
            use_threshold=self.config.sc_use_threshold,
        )
        self.histories = TageScLHistories(self.tage.histories, self.sc.histories)

    def make_histories(self) -> TageScLHistories:
        """A fresh history bundle (for the alternate path)."""
        return TageScLHistories(self.tage.make_histories(), self.sc.make_histories())

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(
        self, pc: int, histories: TageScLHistories | None = None
    ) -> TageScLPrediction:
        histories = histories or self.histories
        tage_pred = self.tage.predict(pc, histories.tage)

        if tage_pred.provider == "hit":
            provider = Provider.HITBANK
        elif tage_pred.provider == "alt":
            provider = Provider.ALTBANK
        elif self.tage.bimodal.miss_in_last_8:
            provider = Provider.BIMODAL_1IN8
        else:
            provider = Provider.BIMODAL
        intermediate = tage_pred.taken

        loop_pred = self.loop.predict(pc)
        if loop_pred.valid and loop_pred.confident:
            intermediate = loop_pred.taken
            provider = Provider.LOOP

        # The intermediate prediction votes into the SC sum with a weight
        # scaled by its own confidence (as in Seznec's CBP-5 predictor):
        # a saturated TAGE counter is almost never overridden, a weak or
        # loop-less prediction is fair game for the corrector.
        if provider is Provider.LOOP:
            confidence = 3 if loop_pred.confident else 1
        elif provider in (Provider.BIMODAL, Provider.BIMODAL_1IN8):
            confidence = 3 if tage_pred.bimodal_ctr in (-2, 1) else 0
        else:
            ctr = tage_pred.provider_ctr
            confidence = ctr if ctr >= 0 else -ctr - 1
        weight = 4 + 10 * confidence
        sc_pred = self.sc.predict(pc, intermediate, histories.sc, tage_weight=weight)
        final = intermediate
        if self.sc.should_override(sc_pred, intermediate):
            final = sc_pred.taken
            provider = Provider.SC
            sc_pred.used = True

        return TageScLPrediction(
            pc, final, provider, tage_pred, loop_pred, sc_pred, intermediate
        )

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------

    def update(self, prediction: TageScLPrediction, taken: bool) -> None:
        """Train all components and advance the predicted-path history.

        Called once per resolved conditional branch with its actual
        direction (the pipeline repairs history on mispredictions, so the
        committed history equals the correct-path history).
        """
        self.loop.update(prediction.pc, taken, prediction.loop)
        self.sc.update(prediction.sc, taken)
        self.tage.update(prediction.tage, taken)
        self.histories.push(prediction.pc, taken)

    def push_unconditional(self, pc: int) -> None:
        """Insert an always-taken (unconditional) branch into the history."""
        self.histories.push(pc, True)

    @property
    def storage_kb(self) -> float:
        return self.config.storage_kb

    def __repr__(self) -> str:
        return f"TageScL(~{self.storage_kb:.1f}KB)"
