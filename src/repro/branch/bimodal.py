"""Bimodal base predictor — a PC-indexed table of signed saturating counters.

This is TAGE's fallback component.  Following Seznec's storage-free
confidence work (paper Section IV-A), the combined predictor also tracks
whether any of the last eight *bimodal-provided* predictions mispredicted
(the ``>1in8`` condition); that shift register lives here since it is
intrinsically a property of the bimodal provider.
"""

from __future__ import annotations


class BimodalPredictor:
    """Direct-mapped table of 2-bit (by default) signed counters."""

    def __init__(self, size_bits: int = 13, counter_bits: int = 2) -> None:
        if size_bits < 1:
            raise ValueError("size_bits must be positive")
        if counter_bits < 2:
            raise ValueError("counters need at least 2 bits")
        self.size = 1 << size_bits
        self._mask = self.size - 1
        self._min = -(1 << (counter_bits - 1))
        self._max = (1 << (counter_bits - 1)) - 1
        # Initialise weakly not-taken: an unseen conditional is most often a
        # not-taken forward branch (and a real frontend without a BTB entry
        # falls through anyway).
        self._table = [-1] * self.size
        # Correctness (1 = correct) of the last 8 bimodal-provided
        # predictions, newest in bit 0.
        self._recent_outcomes = 0xFF

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def counter(self, pc: int) -> int:
        """Raw signed counter value for ``pc`` (taken iff >= 0)."""
        return self._table[self._index(pc)]

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 0

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        value = self._table[index]
        if taken:
            self._table[index] = min(self._max, value + 1)
        else:
            self._table[index] = max(self._min, value - 1)

    def record_provided(self, correct: bool) -> None:
        """Record the outcome of a prediction the bimodal table provided."""
        self._recent_outcomes = ((self._recent_outcomes << 1) | int(correct)) & 0xFF

    @property
    def miss_in_last_8(self) -> bool:
        """True when any of the last 8 bimodal-provided predictions missed."""
        return self._recent_outcomes != 0xFF

    def __repr__(self) -> str:
        return f"BimodalPredictor(size={self.size})"
