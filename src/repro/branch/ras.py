"""Return Address Stack.

The baseline uses a 64-entry RAS; UCP adds a 16-entry Alt-RAS that is
*copied* from the main RAS when an alternate path starts and then updated
speculatively while walking it (paper Section IV-C) — hence
:meth:`copy_from`.  The stack is circular: overflow silently wraps and
underflow returns ``None`` (a real RAS would produce a garbage target,
which the caller treats as "target unknown").
"""

from __future__ import annotations


class ReturnAddressStack:
    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("RAS needs at least one entry")
        self.capacity = capacity
        self._entries: list[int] = [0] * capacity
        self._top = 0  # index of the next free slot
        self._occupancy = 0
        #: Optional golden reference model (repro.verify.oracles.RefRAS)
        #: kept in lockstep when the sim sanitizer is enabled.
        self.shadow = None

    def push(self, return_address: int) -> None:
        if self.shadow is not None:
            self.shadow.push(return_address)
        self._entries[self._top] = return_address
        self._top = (self._top + 1) % self.capacity
        self._occupancy = min(self.capacity, self._occupancy + 1)

    def pop(self) -> int | None:
        if self.shadow is not None:
            self.shadow.pop()
        if self._occupancy == 0:
            return None
        self._top = (self._top - 1) % self.capacity
        self._occupancy -= 1
        return self._entries[self._top]

    def peek(self) -> int | None:
        if self._occupancy == 0:
            return None
        return self._entries[(self._top - 1) % self.capacity]

    def copy_from(self, other: "ReturnAddressStack") -> None:
        """Adopt the newest entries of ``other`` (Alt-RAS initialisation).

        When this stack is smaller than the source, only the newest
        ``capacity`` entries are kept — matching a 16-entry Alt-RAS copied
        from a 64-entry main RAS.
        """
        kept = min(self.capacity, other._occupancy)
        addresses = [
            other._entries[(other._top - kept + offset) % other.capacity]
            for offset in range(kept)
        ]
        self._entries = [0] * self.capacity
        for slot, address in enumerate(addresses):
            self._entries[slot] = address
        self._top = kept % self.capacity
        self._occupancy = kept
        if self.shadow is not None and other.shadow is not None:
            self.shadow.copy_from(other.shadow)

    def check_invariants(self) -> None:
        """Sim-sanitizer hook: structural depth/index bounds.

        Raises ``AssertionError`` with a description on violation; the
        invariant checker wraps it into a ``SimCheckError``.
        """
        assert 0 <= self._occupancy <= self.capacity, (
            f"RAS occupancy {self._occupancy} outside [0, {self.capacity}]"
        )
        assert 0 <= self._top < self.capacity, (
            f"RAS top pointer {self._top} outside [0, {self.capacity})"
        )
        assert len(self._entries) == self.capacity, (
            f"RAS storage resized to {len(self._entries)} != {self.capacity}"
        )
        if self.shadow is not None:
            assert len(self.shadow) == self._occupancy, (
                f"RAS depth {self._occupancy} != reference depth "
                f"{len(self.shadow)}"
            )
            assert self.shadow.peek() == self.peek(), (
                f"RAS top {self.peek()!r} != reference top "
                f"{self.shadow.peek()!r}"
            )

    def __len__(self) -> int:
        return self._occupancy

    def __repr__(self) -> str:
        return f"ReturnAddressStack({self._occupancy}/{self.capacity})"
