"""Branch prediction substrate.

Implements the full prediction stack of the paper's baseline (Table II):

* :mod:`repro.branch.bimodal` — the bimodal base predictor.
* :mod:`repro.branch.tage` — TAGE tagged geometric-history tables, with
  explicit HitBank/AltBank provenance (needed for confidence estimation).
* :mod:`repro.branch.loop` — the loop predictor (L of TAGE-SC-L).
* :mod:`repro.branch.sc` — the statistical corrector (SC of TAGE-SC-L).
* :mod:`repro.branch.tage_sc_l` — the combined TAGE-SC-L predictor that
  reports *which component provided each prediction* (paper Fig. 6/7).
* :mod:`repro.branch.ittage` — ITTAGE indirect target predictor.
* :mod:`repro.branch.btb` — banked set-associative branch target buffer.
* :mod:`repro.branch.ras` — return address stack.
* :mod:`repro.branch.confidence` — TAGE-Conf and the paper's UCP-Conf
  hard-to-predict branch classifiers.
"""

from repro.branch.bimodal import BimodalPredictor
from repro.branch.btb import BTB, BTBConfig, BTBEntry, RegionBTB, make_btb
from repro.branch.confidence import (
    ConfidenceStats,
    tage_conf_is_h2p,
    ucp_conf_is_h2p,
)
from repro.branch.ittage import ITTAGE, ITTAGEConfig
from repro.branch.loop import LoopPredictor
from repro.branch.perceptron import (
    HashedPerceptron,
    PerceptronConfig,
    perceptron_is_h2p,
)
from repro.branch.ras import ReturnAddressStack
from repro.branch.sc import StatisticalCorrector
from repro.branch.tage import TAGE, TageConfig, TageHistories, TagePrediction
from repro.branch.tage_sc_l import Provider, TageScL, TageScLConfig, TageScLPrediction

__all__ = [
    "BimodalPredictor",
    "TAGE",
    "TageConfig",
    "TageHistories",
    "TagePrediction",
    "LoopPredictor",
    "HashedPerceptron",
    "PerceptronConfig",
    "perceptron_is_h2p",
    "StatisticalCorrector",
    "TageScL",
    "TageScLConfig",
    "TageScLPrediction",
    "Provider",
    "ITTAGE",
    "ITTAGEConfig",
    "BTB",
    "BTBConfig",
    "BTBEntry",
    "RegionBTB",
    "make_btb",
    "ReturnAddressStack",
    "ConfidenceStats",
    "tage_conf_is_h2p",
    "ucp_conf_is_h2p",
]
