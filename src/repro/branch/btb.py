"""Banked, set-associative Branch Target Buffer.

The baseline is a 64K-entry, 16-bank instruction BTB (paper Table II).
UCP doubles the banking to 32 so the predicted and alternate paths can be
looked up concurrently, arbitrating bank conflicts with a 3-bit delay
counter (Section IV-C); the bank mapping is exposed via :meth:`bank_of` so
the UCP engine can model those conflicts.

Entries are allocated for *taken-at-least-once* branches and record the
branch class and taken target.  Conditional branches that were never taken
don't occupy the BTB (matching how a real BTB only learns of a branch when
it redirects fetch).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import BranchClass


@dataclass(frozen=True)
class BTBConfig:
    n_entries: int = 65536
    ways: int = 8
    n_banks: int = 16
    #: "instruction" — one entry per branch (the paper's baseline);
    #: "region" — one entry covers all taken-at-least-once branches of an
    #: aligned code region, the organisation the paper notes would let the
    #: demand and alternate paths share a single access (Section IV-C).
    organization: str = "instruction"
    #: Region organisation only: bytes covered per entry and the maximum
    #: branches an entry can record.
    region_bytes: int = 64
    region_branches: int = 4

    @property
    def n_sets(self) -> int:
        return self.n_entries // self.ways

    @property
    def storage_kb(self) -> float:
        # ~8B per entry (partial tag + target + type), as in storage-
        # effective BTB literature.
        return self.n_entries * 8 / 1024


class BTBEntry:
    __slots__ = ("pc", "target", "branch_class")

    def __init__(self, pc: int, target: int, branch_class: BranchClass) -> None:
        self.pc = pc
        self.target = target
        self.branch_class = branch_class

    def __repr__(self) -> str:
        return f"BTBEntry(pc={self.pc:#x}, target={self.target:#x}, {self.branch_class.name})"


class BTB:
    """Set-associative BTB with true LRU per set.

    Sets are dicts keyed by full PC; Python's insertion order doubles as
    the LRU order (oldest first), with hits reinserted at the MRU end.
    """

    def __init__(self, config: BTBConfig | None = None) -> None:
        self.config = config or BTBConfig()
        if self.config.n_entries % self.config.ways:
            raise ValueError("n_entries must be a multiple of ways")
        self._n_sets = self.config.n_sets
        self._sets: list[dict[int, BTBEntry]] = [dict() for _ in range(self._n_sets)]
        self.lookups = 0
        self.hits = 0

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) % self._n_sets

    def bank_of(self, pc: int, n_banks: int | None = None) -> int:
        """Bank servicing ``pc`` — consecutive sets stripe across banks."""
        banks = n_banks if n_banks is not None else self.config.n_banks
        return self._set_index(pc) % banks

    def lookup(self, pc: int) -> BTBEntry | None:
        """Query the BTB; hits refresh LRU."""
        self.lookups += 1
        entries = self._sets[self._set_index(pc)]
        entry = entries.get(pc)
        if entry is None:
            return None
        self.hits += 1
        # Move to MRU position.
        del entries[pc]
        entries[pc] = entry
        return entry

    def peek(self, pc: int) -> BTBEntry | None:
        """Query without touching LRU or stats (for instrumentation)."""
        return self._sets[self._set_index(pc)].get(pc)

    def update(self, pc: int, branch_class: BranchClass, target: int) -> None:
        """Install or refresh the entry for a taken branch."""
        entries = self._sets[self._set_index(pc)]
        entry = entries.get(pc)
        if entry is not None:
            entry.target = target
            entry.branch_class = branch_class
            del entries[pc]
            entries[pc] = entry
            return
        if len(entries) >= self.config.ways:
            # Evict LRU (first key in insertion order).
            oldest = next(iter(entries))
            del entries[oldest]
        entries[pc] = BTBEntry(pc, target, branch_class)

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def __repr__(self) -> str:
        return (
            f"BTB({self.config.n_entries} entries, {self.config.ways}-way, "
            f"{self.config.n_banks} banks)"
        )


class RegionBTB:
    """Region-organised BTB: one entry per aligned code region.

    An entry records up to ``region_branches`` taken-at-least-once branches
    (offset → target/type) of a ``region_bytes``-aligned region.  Both the
    demand and alternate paths of UCP typically walk the *same* regions, so
    a single entry read serves both — the organisation the paper suggests
    as an alternative to doubling the instruction BTB's banking.

    Exposes the same interface as :class:`BTB` (lookup/peek/update/
    bank_of), with region-granular sets and LRU.
    """

    def __init__(self, config: BTBConfig | None = None) -> None:
        self.config = config or BTBConfig(organization="region")
        # Budget parity with the instruction BTB: the same entry count is
        # split into region entries holding region_branches branches each.
        n_region_entries = max(1, self.config.n_entries // self.config.region_branches)
        if n_region_entries % self.config.ways:
            n_region_entries -= n_region_entries % self.config.ways
        self._n_sets = max(1, n_region_entries // self.config.ways)
        #: set -> {region: {offset: BTBEntry}}
        self._sets: list[dict[int, dict[int, BTBEntry]]] = [
            dict() for _ in range(self._n_sets)
        ]
        self.lookups = 0
        self.hits = 0

    def _region_of(self, pc: int) -> int:
        return pc // self.config.region_bytes

    def _set_index(self, region: int) -> int:
        return region % self._n_sets

    def bank_of(self, pc: int, n_banks: int | None = None) -> int:
        banks = n_banks if n_banks is not None else self.config.n_banks
        return self._set_index(self._region_of(pc)) % banks

    def _find(self, pc: int, touch: bool) -> BTBEntry | None:
        region = self._region_of(pc)
        entries = self._sets[self._set_index(region)]
        branches = entries.get(region)
        if branches is None:
            return None
        if touch:
            del entries[region]
            entries[region] = branches  # refresh LRU
        return branches.get(pc % self.config.region_bytes)

    def lookup(self, pc: int) -> BTBEntry | None:
        self.lookups += 1
        entry = self._find(pc, touch=True)
        if entry is not None:
            self.hits += 1
        return entry

    def peek(self, pc: int) -> BTBEntry | None:
        return self._find(pc, touch=False)

    def update(self, pc: int, branch_class: BranchClass, target: int) -> None:
        region = self._region_of(pc)
        entries = self._sets[self._set_index(region)]
        branches = entries.get(region)
        if branches is None:
            if len(entries) >= self.config.ways:
                del entries[next(iter(entries))]
            branches = {}
            entries[region] = branches
        offset = pc % self.config.region_bytes
        existing = branches.get(offset)
        if existing is not None:
            existing.target = target
            existing.branch_class = branch_class
        else:
            if len(branches) >= self.config.region_branches:
                # Evict the oldest branch recorded in this region entry.
                del branches[next(iter(branches))]
            branches[offset] = BTBEntry(pc, target, branch_class)
        # Refresh region LRU.
        del entries[region]
        entries[region] = branches

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def __repr__(self) -> str:
        return (
            f"RegionBTB({self._n_sets * self.config.ways} regions x "
            f"{self.config.region_branches} branches)"
        )


def make_btb(config: BTBConfig | None = None):
    """Instantiate the BTB organisation selected by the config."""
    config = config or BTBConfig()
    if config.organization == "region":
        return RegionBTB(config)
    if config.organization == "instruction":
        return BTB(config)
    raise ValueError(f"unknown BTB organization {config.organization!r}")
