"""Hashed perceptron conditional branch predictor.

The paper's related work (Section VII-D) cites Akkary et al.'s
perceptron-based branch confidence estimation [6] as the other family of
storage-free confidence sources besides TAGE counters.  This module
provides that family: a hashed perceptron predictor (Jiménez & Lin style,
with per-table history-hashed weight rows) whose output magnitude doubles
as a confidence estimate.

It implements the same provider-agnostic surface the UCP trigger needs —
``predict`` returning an object with a ``taken`` direction and a
confidence query — so experiments can swap the H2P source between
TAGE-SC-L provenance and perceptron-output thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.history import GlobalHistory


@dataclass(frozen=True)
class PerceptronConfig:
    n_tables: int = 8
    table_size_bits: int = 10
    weight_bits: int = 6
    #: History bits hashed into table i: geometric from min to max.
    min_history: int = 2
    max_history: int = 128
    #: Training threshold (classic perceptron theta ≈ 1.93*h + 14).
    theta: int | None = None

    def history_lengths(self) -> list[int]:
        if self.n_tables == 1:
            return [self.min_history]
        ratio = (self.max_history / self.min_history) ** (1.0 / (self.n_tables - 1))
        lengths = []
        for i in range(self.n_tables):
            length = round(self.min_history * ratio**i)
            if lengths and length <= lengths[-1]:
                length = lengths[-1] + 1
            lengths.append(length)
        return lengths

    @property
    def effective_theta(self) -> int:
        if self.theta is not None:
            return self.theta
        return int(1.93 * self.n_tables + 14)

    @property
    def storage_kb(self) -> float:
        bits = self.n_tables * (1 << self.table_size_bits) * self.weight_bits
        return bits / 8192


class PerceptronPrediction:
    """Direction plus the raw vote sum (the confidence signal)."""

    __slots__ = ("pc", "taken", "output", "indices")

    def __init__(self, pc: int, taken: bool, output: int, indices: list[int]) -> None:
        self.pc = pc
        self.taken = taken
        self.output = output
        self.indices = indices

    @property
    def magnitude(self) -> int:
        return abs(self.output)

    def low_confidence(self, threshold: int) -> bool:
        """Akkary-style H2P test: a small |output| flags the branch."""
        return self.magnitude < threshold


class HashedPerceptron:
    """Multi-table hashed perceptron over geometric history lengths."""

    def __init__(self, config: PerceptronConfig | None = None) -> None:
        self.config = config or PerceptronConfig()
        size = 1 << self.config.table_size_bits
        self._mask = size - 1
        self._w_max = (1 << (self.config.weight_bits - 1)) - 1
        self._w_min = -(1 << (self.config.weight_bits - 1))
        self._tables = [[0] * size for _ in range(self.config.n_tables)]
        lengths = self.config.history_lengths()
        self.history = GlobalHistory(capacity=lengths[-1] + 1)
        self._folds = [self.history.add_folded(length, self.config.table_size_bits)
                       for length in lengths]

    def _indices(self, pc: int) -> list[int]:
        base = pc >> 2
        return [
            (base ^ (base >> (table + 2)) ^ fold.value) & self._mask
            for table, fold in enumerate(self._folds)
        ]

    def predict(self, pc: int) -> PerceptronPrediction:
        indices = self._indices(pc)
        output = sum(
            self._tables[table][index] for table, index in enumerate(indices)
        )
        return PerceptronPrediction(pc, output >= 0, output, indices)

    def update(self, prediction: PerceptronPrediction, taken: bool) -> None:
        """Train on a miss or a below-theta output; push history."""
        mispredicted = prediction.taken != taken
        if mispredicted or prediction.magnitude <= self.config.effective_theta:
            direction = 1 if taken else -1
            for table, index in enumerate(prediction.indices):
                weight = self._tables[table][index] + direction
                self._tables[table][index] = max(self._w_min, min(self._w_max, weight))
        self.history.push(taken)

    def push_unconditional(self, pc: int) -> None:
        self.history.push(True)

    def __repr__(self) -> str:
        return f"HashedPerceptron({self.config.n_tables} tables, ~{self.config.storage_kb:.1f}KB)"


def perceptron_is_h2p(prediction: PerceptronPrediction, threshold: int = 32) -> bool:
    """Perceptron-based H2P classification (Akkary et al. [6]).

    The perceptron output magnitude is proportional to prediction
    certainty; below-threshold magnitudes flag hard-to-predict instances.
    """
    return prediction.low_confidence(threshold)
