"""Loop predictor — the L component of TAGE-SC-L.

Captures branches that iterate a constant number of times: once the same
trip count has been observed repeatedly (confidence saturates), the
predictor can call the loop exit exactly.  Per paper Fig. 6b, confident
loop-predictor predictions have a very low miss rate, which is why
UCP-Conf classifies them as high confidence.
"""

from __future__ import annotations


class _LoopEntry:
    __slots__ = ("tag", "past_trip", "current_iter", "confidence", "age")

    def __init__(self) -> None:
        self.tag = -1
        self.past_trip = 0  # learned trip count (0 = unknown)
        self.current_iter = 0
        self.confidence = 0
        self.age = 0


class LoopPrediction:
    """Loop predictor output: only meaningful when ``valid`` is true."""

    __slots__ = ("valid", "taken", "confident", "confidence", "entry_index")

    def __init__(self, valid: bool, taken: bool, confident: bool, confidence: int, entry_index: int) -> None:
        self.valid = valid
        self.taken = taken
        self.confident = confident
        self.confidence = confidence
        self.entry_index = entry_index


_INVALID = LoopPrediction(False, False, False, 0, -1)


class LoopPredictor:
    """A small direct-mapped table of loop trip-count monitors."""

    CONFIDENCE_MAX = 7
    AGE_MAX = 7

    def __init__(self, size_bits: int = 6, confidence_threshold: int = 3) -> None:
        self.size = 1 << size_bits
        self._mask = self.size - 1
        self.confidence_threshold = confidence_threshold
        self._entries = [_LoopEntry() for _ in range(self.size)]

    def _lookup(self, pc: int) -> tuple[int, _LoopEntry]:
        index = (pc >> 2) & self._mask
        return index, self._entries[index]

    def predict(self, pc: int) -> LoopPrediction:
        index, entry = self._lookup(pc)
        if entry.tag != (pc >> 2) or entry.past_trip == 0:
            return _INVALID
        # Predict taken until the learned trip count is reached.
        taken = entry.current_iter + 1 < entry.past_trip
        confident = entry.confidence >= self.confidence_threshold
        return LoopPrediction(True, taken, confident, entry.confidence, index)

    def update(self, pc: int, taken: bool, prediction: LoopPrediction) -> None:
        index, entry = self._lookup(pc)
        if entry.tag != (pc >> 2):
            # Try to (re)allocate: steal the slot if its current owner aged out.
            if entry.age == 0:
                entry.tag = pc >> 2
                entry.past_trip = 0
                entry.current_iter = 0
                entry.confidence = 0
                entry.age = self.AGE_MAX
            else:
                entry.age -= 1
            return

        entry.age = self.AGE_MAX
        if taken:
            entry.current_iter += 1
            # A loop that exceeds its learned trip count was mislearned.
            if entry.past_trip and entry.current_iter >= entry.past_trip:
                entry.past_trip = 0
                entry.confidence = 0
        else:
            observed_trip = entry.current_iter + 1
            if entry.past_trip == observed_trip:
                entry.confidence = min(self.CONFIDENCE_MAX, entry.confidence + 1)
            else:
                entry.past_trip = observed_trip
                entry.confidence = 0
            entry.current_iter = 0

    def __repr__(self) -> str:
        return f"LoopPredictor(size={self.size})"
