"""Branch confidence estimation: TAGE-Conf and UCP-Conf.

Two storage-free hard-to-predict (H2P) classifiers over TAGE-SC-L
prediction provenance:

* :func:`tage_conf_is_h2p` — Seznec's original heuristic (HPCA 2011): a
  prediction is *high confidence* iff its counter is saturated, unless it
  came from the bimodal table and a bimodal-provided prediction missed in
  the last eight.  The heuristic predates SC/LP, so those providers are
  judged by the underlying TAGE counter.
* :func:`ucp_conf_is_h2p` — the paper's improvement (Section IV-A/B):
  additionally treats every AltBank prediction as low confidence, every
  confident loop-predictor prediction as high confidence, and every SC
  override as low confidence.

:class:`ConfidenceStats` accumulates the coverage/accuracy numbers of
paper Fig. 9.
"""

from __future__ import annotations

from repro.branch.tage_sc_l import Provider, TageScLPrediction
from repro.common.stats import StatBlock, percent

#: Saturation bounds of the 3-bit tagged-table counters (-4 & 3) and the
#: 2-bit bimodal counter (-2 & 1).
_TAGGED_SATURATED = (-4, 3)
_BIMODAL_SATURATED = (-2, 1)


def _tage_component_confident(prediction: TageScLPrediction) -> bool:
    """Seznec's rule applied to the TAGE component of the prediction."""
    tage = prediction.tage
    if tage.provider == "hit":
        return tage.hit_ctr in _TAGGED_SATURATED
    if tage.provider == "alt":
        return tage.alt_ctr in _TAGGED_SATURATED
    # Bimodal provider: saturated counter, and no recent bimodal miss.
    if prediction.provider is Provider.BIMODAL_1IN8:
        return False
    return tage.bimodal_ctr in _BIMODAL_SATURATED


def tage_conf_is_h2p(prediction: TageScLPrediction) -> bool:
    """Original TAGE confidence heuristic: H2P iff not high confidence."""
    return not _tage_component_confident(prediction)


def ucp_conf_is_h2p(prediction: TageScLPrediction) -> bool:
    """The paper's improved H2P classifier (Section IV-B).

    A branch instance is H2P if its prediction came from:

    1. bimodal while a bimodal-provided prediction missed in the last 8;
    2. bimodal or HitBank with an unsaturated counter;
    3. the AltBank (always — Fig. 6a shows AltBank misses heavily at any
       counter value);
    4. the SC (always — Fig. 6b shows 10–50% miss rates).

    Confident loop-predictor predictions are high confidence (<3% miss).
    """
    provider = prediction.provider
    if provider is Provider.SC:
        return True
    if provider is Provider.ALTBANK:
        return True
    if provider is Provider.LOOP:
        return False
    if provider is Provider.BIMODAL_1IN8:
        return True
    if provider is Provider.BIMODAL:
        return prediction.tage.bimodal_ctr not in _BIMODAL_SATURATED
    # HitBank.
    return prediction.tage.hit_ctr not in _TAGGED_SATURATED


class ConfidenceStats:
    """Coverage & accuracy accounting for an H2P classifier (Fig. 9).

    * **coverage** — fraction of actual mispredictions flagged H2P;
    * **accuracy** — fraction of H2P-flagged predictions that mispredict.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = StatBlock(name)

    def record(self, flagged_h2p: bool, mispredicted: bool) -> None:
        self.stats.add("predictions")
        if flagged_h2p:
            self.stats.add("flagged")
        if mispredicted:
            self.stats.add("mispredictions")
        if flagged_h2p and mispredicted:
            self.stats.add("flagged_mispredictions")

    @property
    def coverage(self) -> float:
        return percent(self.stats["flagged_mispredictions"], self.stats["mispredictions"])

    @property
    def accuracy(self) -> float:
        return percent(self.stats["flagged_mispredictions"], self.stats["flagged"])

    def __repr__(self) -> str:
        return (
            f"ConfidenceStats({self.name!r}, coverage={self.coverage:.1f}%, "
            f"accuracy={self.accuracy:.1f}%)"
        )
