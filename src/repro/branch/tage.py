"""TAGE — TAgged GEometric history length branch predictor.

A faithful implementation of the TAGE core (Seznec & Michaud), sized by
:class:`TageConfig`.  Key properties the paper relies on and which we model
explicitly:

* **Provenance** — every prediction reports whether it came from the
  *HitBank* (longest-history matching table), the *AltBank* (second
  longest), or the bimodal base, together with the provider counter value;
  this is the raw material of TAGE-Conf / UCP-Conf (paper Section IV-A).
* **Detachable histories** — index/tag hashes are computed against a
  :class:`TageHistories` bundle.  The default bundle tracks the predicted
  path, but UCP's alternate-path predictor (Alt-BP) maintains a second,
  divergent bundle that is resynchronised by copying (Section IV-C);
  ``predict(pc, histories=...)`` makes that possible without duplicating
  table state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.bimodal import BimodalPredictor
from repro.common.history import FoldedHistory, GlobalHistory, PathHistory


@dataclass(frozen=True)
class TageConfig:
    """Geometry of a TAGE predictor.

    The defaults approximate the 64KB-class predictor of the paper's
    baseline; ``small()`` returns the 8KB-class geometry used for UCP's
    alternate-path predictor.
    """

    n_tables: int = 12
    min_history: int = 4
    max_history: int = 320
    table_size_bits: int = 10
    tag_bits: int = 10
    counter_bits: int = 3
    useful_bits: int = 2
    bimodal_size_bits: int = 13
    useful_reset_period: int = 2048  # mispredict-allocations between u-resets

    @classmethod
    def small(cls) -> "TageConfig":
        """An ~8KB-class TAGE, the paper's Alt-BP budget (Section IV-F)."""
        return cls(
            n_tables=8,
            min_history=4,
            max_history=160,
            table_size_bits=8,
            tag_bits=8,
            bimodal_size_bits=11,
        )

    def history_lengths(self) -> list[int]:
        """Geometric series of history lengths, one per tagged table."""
        if self.n_tables == 1:
            return [self.min_history]
        ratio = (self.max_history / self.min_history) ** (1.0 / (self.n_tables - 1))
        lengths = []
        for i in range(self.n_tables):
            length = round(self.min_history * ratio**i)
            if lengths and length <= lengths[-1]:
                length = lengths[-1] + 1
            lengths.append(length)
        return lengths

    @property
    def storage_bits(self) -> int:
        """Approximate storage cost (tag + counter + useful per entry)."""
        per_entry = self.tag_bits + self.counter_bits + self.useful_bits
        tagged = self.n_tables * (1 << self.table_size_bits) * per_entry
        bimodal = (1 << self.bimodal_size_bits) * 2
        return tagged + bimodal


class TageHistories:
    """The history state a TAGE instance hashes with.

    Bundles the global direction history, a short path history, and the
    per-table folded views.  Two bundles with the same geometry can be
    resynchronised with :meth:`copy_from` — exactly what the paper's Alt-BP
    does when a new alternate path starts.
    """

    def __init__(self, config: TageConfig) -> None:
        self.config = config
        lengths = config.history_lengths()
        self.global_history = GlobalHistory(capacity=lengths[-1] + 1)
        self.path = PathHistory(bits=16)
        self.index_folds: list[FoldedHistory] = []
        self.tag_folds_a: list[FoldedHistory] = []
        self.tag_folds_b: list[FoldedHistory] = []
        for length in lengths:
            self.index_folds.append(
                self.global_history.add_folded(length, config.table_size_bits)
            )
            self.tag_folds_a.append(self.global_history.add_folded(length, config.tag_bits))
            self.tag_folds_b.append(
                self.global_history.add_folded(length, max(1, config.tag_bits - 1))
            )

    def push(self, pc: int, taken: bool) -> None:
        """Insert one branch into the history (direction + path)."""
        self.global_history.push(taken)
        self.path.push(pc)

    def copy_from(self, other: "TageHistories") -> None:
        self.global_history.copy_from(other.global_history)
        self.path.restore(other.path.snapshot())

    def snapshot(self):
        return self.global_history.snapshot(), self.path.snapshot()

    def restore(self, state) -> None:
        ghist_state, path_state = state
        self.global_history.restore(ghist_state)
        self.path.restore(path_state)


class TagePrediction:
    """Prediction plus full provenance, consumed by update and confidence."""

    __slots__ = (
        "pc",
        "taken",
        "provider",
        "hit_bank",
        "alt_bank",
        "hit_ctr",
        "alt_ctr",
        "bimodal_ctr",
        "alt_taken",
        "provider_newly_allocated",
        "indices",
        "tags",
    )

    def __init__(self) -> None:
        self.pc = 0
        self.taken = False
        self.provider = "bimodal"  # 'hit' | 'alt' | 'bimodal'
        self.hit_bank: int | None = None
        self.alt_bank: int | None = None
        self.hit_ctr = 0
        self.alt_ctr = 0
        self.bimodal_ctr = 0
        self.alt_taken = False
        self.provider_newly_allocated = False
        self.indices: list[int] = []
        self.tags: list[int] = []

    @property
    def provider_ctr(self) -> int:
        """The signed counter of whichever component provided the prediction."""
        if self.provider == "hit":
            return self.hit_ctr
        if self.provider == "alt":
            return self.alt_ctr
        return self.bimodal_ctr


class TAGE:
    """The TAGE predictor proper: bimodal base + tagged geometric tables."""

    def __init__(self, config: TageConfig | None = None) -> None:
        self.config = config or TageConfig()
        self.bimodal = BimodalPredictor(self.config.bimodal_size_bits, counter_bits=2)
        size = 1 << self.config.table_size_bits
        self._size_mask = size - 1
        self._tag_mask = (1 << self.config.tag_bits) - 1
        self._ctr_max = (1 << (self.config.counter_bits - 1)) - 1
        self._ctr_min = -(1 << (self.config.counter_bits - 1))
        self._useful_max = (1 << self.config.useful_bits) - 1
        n = self.config.n_tables
        # Tags start at -1 (no computed tag is negative), i.e. invalid.
        self._tags = [[-1] * size for _ in range(n)]
        self._ctrs = [[0] * size for _ in range(n)]
        self._useful = [[0] * size for _ in range(n)]
        self.histories = TageHistories(self.config)
        # USE_ALT_ON_NA: prefer the alternate prediction when the provider
        # entry is newly allocated (weak and not useful).
        self._use_alt_on_na = 0
        self._allocations_since_reset = 0
        # Deterministic pseudo-random source for allocation bank choice.
        self._alloc_seed = 0x9E3779B9

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def _index(self, pc: int, table: int, histories: TageHistories) -> int:
        fold = histories.index_folds[table].value
        path = histories.path.value & self._size_mask
        pc_bits = pc >> 2
        return (pc_bits ^ (pc_bits >> (table + 2)) ^ fold ^ (path >> (table & 3))) & self._size_mask

    def _tag(self, pc: int, table: int, histories: TageHistories) -> int:
        fold_a = histories.tag_folds_a[table].value
        fold_b = histories.tag_folds_b[table].value
        return ((pc >> 2) ^ fold_a ^ (fold_b << 1)) & self._tag_mask

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(self, pc: int, histories: TageHistories | None = None) -> TagePrediction:
        histories = histories or self.histories
        pred = TagePrediction()
        pred.pc = pc
        # _index()/_tag() inlined across all tables: predict() runs for
        # every conditional branch and the per-table method calls dominate
        # its cost.
        n_tables = self.config.n_tables
        size_mask = self._size_mask
        tag_mask = self._tag_mask
        pc_bits = pc >> 2
        path = histories.path.value & size_mask
        index_folds = histories.index_folds
        tag_folds_a = histories.tag_folds_a
        tag_folds_b = histories.tag_folds_b
        pred.indices = indices = [
            (pc_bits ^ (pc_bits >> (t + 2)) ^ index_folds[t].value ^ (path >> (t & 3)))
            & size_mask
            for t in range(n_tables)
        ]
        pred.tags = tags = [
            (pc_bits ^ tag_folds_a[t].value ^ (tag_folds_b[t].value << 1)) & tag_mask
            for t in range(n_tables)
        ]
        pred.bimodal_ctr = self.bimodal.counter(pc)

        hit_bank = alt_bank = None
        tag_tables = self._tags
        for table in range(n_tables - 1, -1, -1):
            if tag_tables[table][indices[table]] == tags[table]:
                if hit_bank is None:
                    hit_bank = table
                else:
                    alt_bank = table
                    break
        pred.hit_bank, pred.alt_bank = hit_bank, alt_bank

        bimodal_taken = pred.bimodal_ctr >= 0
        if hit_bank is None:
            pred.taken = bimodal_taken
            pred.provider = "bimodal"
            pred.alt_taken = bimodal_taken
            return pred

        pred.hit_ctr = self._ctrs[hit_bank][pred.indices[hit_bank]]
        hit_taken = pred.hit_ctr >= 0
        if alt_bank is not None:
            pred.alt_ctr = self._ctrs[alt_bank][pred.indices[alt_bank]]
            pred.alt_taken = pred.alt_ctr >= 0
            alt_provider = "alt"
        else:
            pred.alt_taken = bimodal_taken
            alt_provider = "bimodal"

        weak = pred.hit_ctr in (-1, 0)
        not_useful = self._useful[hit_bank][pred.indices[hit_bank]] == 0
        pred.provider_newly_allocated = weak and not_useful
        if pred.provider_newly_allocated and self._use_alt_on_na >= 0:
            pred.taken = pred.alt_taken
            pred.provider = alt_provider
        else:
            pred.taken = hit_taken
            pred.provider = "hit"
        return pred

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------

    def update(self, pred: TagePrediction, taken: bool) -> None:
        """Train tables for the branch described by ``pred``.

        Does *not* push history — the owning combined predictor does that
        once per branch so TAGE, SC and LP stay in sync.
        """
        config = self.config
        hit_bank = pred.hit_bank
        mispredicted = pred.taken != taken

        # USE_ALT_ON_NA bookkeeping: trained when the newly-allocated
        # provider and the alternate prediction disagree.
        if pred.provider_newly_allocated and (pred.hit_ctr >= 0) != pred.alt_taken:
            if pred.alt_taken == taken:
                self._use_alt_on_na = min(7, self._use_alt_on_na + 1)
            else:
                self._use_alt_on_na = max(-8, self._use_alt_on_na - 1)

        if hit_bank is not None:
            index = pred.indices[hit_bank]
            self._ctrs[hit_bank][index] = self._bump(self._ctrs[hit_bank][index], taken)
            # When the provider was newly allocated, also train the alternate
            # so the fallback stays warm.
            if pred.provider_newly_allocated:
                if pred.alt_bank is not None:
                    alt_index = pred.indices[pred.alt_bank]
                    self._ctrs[pred.alt_bank][alt_index] = self._bump(
                        self._ctrs[pred.alt_bank][alt_index], taken
                    )
                else:
                    self.bimodal.update(pred.pc, taken)
            # Useful bit: provider differed from alternate and was right.
            hit_taken = pred.hit_ctr >= 0
            if hit_taken != pred.alt_taken:
                useful = self._useful[hit_bank][index]
                if hit_taken == taken:
                    self._useful[hit_bank][index] = min(self._useful_max, useful + 1)
                else:
                    self._useful[hit_bank][index] = max(0, useful - 1)
        else:
            self.bimodal.update(pred.pc, taken)

        if pred.provider == "bimodal":
            self.bimodal.record_provided(not mispredicted)

        # Allocate a longer-history entry on a misprediction.
        if mispredicted:
            start = (hit_bank + 1) if hit_bank is not None else 0
            self._allocate(pred, taken, start)

    def _allocate(self, pred: TagePrediction, taken: bool, start: int) -> None:
        config = self.config
        if start >= config.n_tables:
            return
        # Pseudo-randomly skip up to 2 banks so allocation spreads across
        # history lengths (Seznec's trick against ping-ponging).
        self._alloc_seed = (self._alloc_seed * 1103515245 + 12345) & 0xFFFFFFFF
        skip = (self._alloc_seed >> 16) % 3
        candidates = list(range(start, config.n_tables))
        if skip and len(candidates) > 1:
            candidates = candidates[min(skip, len(candidates) - 1):]

        for table in candidates:
            index = pred.indices[table]
            if self._useful[table][index] == 0:
                self._tags[table][index] = pred.tags[table]
                self._ctrs[table][index] = 0 if taken else -1
                self._allocations_since_reset += 1
                if self._allocations_since_reset >= config.useful_reset_period:
                    self._reset_useful()
                return
        # No free entry: age the candidates instead.
        for table in candidates:
            index = pred.indices[table]
            if self._useful[table][index] > 0:
                self._useful[table][index] -= 1

    def _reset_useful(self) -> None:
        self._allocations_since_reset = 0
        for table_useful in self._useful:
            for index, value in enumerate(table_useful):
                if value:
                    table_useful[index] = value >> 1

    def _bump(self, value: int, taken: bool) -> int:
        if taken:
            return min(self._ctr_max, value + 1)
        return max(self._ctr_min, value - 1)

    # ------------------------------------------------------------------
    # History management
    # ------------------------------------------------------------------

    def make_histories(self) -> TageHistories:
        """A fresh history bundle with this predictor's geometry (for Alt-BP)."""
        return TageHistories(self.config)

    def push_history(self, pc: int, taken: bool) -> None:
        self.histories.push(pc, taken)

    def __repr__(self) -> str:
        kb = self.config.storage_bits / 8192
        return f"TAGE({self.config.n_tables} tables, ~{kb:.1f}KB)"
