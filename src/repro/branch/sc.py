"""Statistical corrector — the SC component of TAGE-SC-L.

A GEHL-style bank of signed-counter tables indexed by PC xor folded global
history of several lengths (plus a pure bias table).  The tables vote; the
weighted sum ``LSUM`` — which also includes the intermediate (TAGE/loop)
prediction's vote — decides whether to *revert* the intermediate
prediction.  The magnitude of ``LSUM`` is the SC confidence the paper
buckets in Fig. 6b (output value ranges like 0–31, 32–63, … 128–255).

Like :class:`~repro.branch.tage.TAGE`, the SC hashes against a detachable
:class:`SCHistories` bundle so UCP's alternate-path predictor can keep a
divergent history without duplicating table state.
"""

from __future__ import annotations

from repro.common.history import FoldedHistory, GlobalHistory

#: History lengths of the corrector tables (0 = bias table, PC-indexed).
DEFAULT_SC_LENGTHS: tuple[int, ...] = (0, 4, 10, 16, 27, 44)


class SCHistories:
    """Global-history bundle with one folded view per history-indexed table."""

    def __init__(self, history_lengths: tuple[int, ...], size_bits: int) -> None:
        self.history_lengths = history_lengths
        self.global_history = GlobalHistory(capacity=max(max(history_lengths), 1) + 1)
        self.folds: list[FoldedHistory | None] = [
            self.global_history.add_folded(length, size_bits) if length else None
            for length in history_lengths
        ]

    def push(self, taken: bool) -> None:
        self.global_history.push(taken)

    def copy_from(self, other: "SCHistories") -> None:
        self.global_history.copy_from(other.global_history)


class SCPrediction:
    """SC vote for one branch: the sum, its direction, and update hooks."""

    __slots__ = ("lsum", "taken", "indices", "used")

    def __init__(self, lsum: int, taken: bool, indices: list[int]) -> None:
        self.lsum = lsum
        self.taken = taken
        self.indices = indices
        #: Set by the combined predictor when SC overrode the intermediate
        #: prediction (i.e. SC is the provider).
        self.used = False

    @property
    def magnitude(self) -> int:
        return abs(self.lsum)


class StatisticalCorrector:
    """GEHL-style corrector over global history.

    Counters are 6-bit signed; each contributes ``2*c + 1`` to the sum so a
    zero counter still casts a weak vote.  The intermediate prediction also
    votes, weighted by ``tage_weight``.
    """

    COUNTER_MIN = -32
    COUNTER_MAX = 31

    def __init__(
        self,
        history_lengths: tuple[int, ...] = DEFAULT_SC_LENGTHS,
        size_bits: int = 10,
        tage_weight: int = 8,
        use_threshold: int = 20,
    ) -> None:
        self.history_lengths = history_lengths
        self.size_bits = size_bits
        self.size = 1 << size_bits
        self._mask = self.size - 1
        self.tage_weight = tage_weight
        self.use_threshold = use_threshold
        self._tables = [[0] * self.size for _ in history_lengths]
        self.histories = SCHistories(history_lengths, size_bits)

    def make_histories(self) -> SCHistories:
        """A fresh, independent history bundle with matching geometry."""
        return SCHistories(self.history_lengths, self.size_bits)

    def _indices(self, pc: int, histories: SCHistories) -> list[int]:
        base = pc >> 2
        indices = []
        for table, fold in enumerate(histories.folds):
            value = base ^ (base >> (table + 3))
            if fold is not None:
                value ^= fold.value
            indices.append(value & self._mask)
        return indices

    def predict(
        self,
        pc: int,
        intermediate_taken: bool,
        histories: SCHistories | None = None,
        tage_weight: int | None = None,
    ) -> SCPrediction:
        histories = histories or self.histories
        # Fused copy of _indices() + the vote loop: one pass, no method call.
        base = pc >> 2
        mask = self._mask
        tables = self._tables
        indices = []
        append = indices.append
        lsum = 0
        shift = 3
        for table, fold in enumerate(histories.folds):
            value = base ^ (base >> shift)
            if fold is not None:
                value ^= fold.value
            value &= mask
            append(value)
            lsum += 2 * tables[table][value] + 1
            shift += 1
        weight = self.tage_weight if tage_weight is None else tage_weight
        lsum += weight if intermediate_taken else -weight
        return SCPrediction(lsum, lsum >= 0, indices)

    def should_override(self, prediction: SCPrediction, intermediate_taken: bool) -> bool:
        """SC overrides when it disagrees and its sum is confident enough."""
        return (
            prediction.taken != intermediate_taken
            and prediction.magnitude >= self.use_threshold
        )

    def update(self, prediction: SCPrediction, taken: bool) -> None:
        """GEHL update: train on mispredictions and low-confidence sums."""
        correct = prediction.taken == taken
        if correct and prediction.magnitude > 4 * self.use_threshold:
            return
        for table, index in enumerate(prediction.indices):
            counter = self._tables[table][index]
            if taken:
                self._tables[table][index] = min(self.COUNTER_MAX, counter + 1)
            else:
                self._tables[table][index] = max(self.COUNTER_MIN, counter - 1)

    def push_history(self, taken: bool) -> None:
        self.histories.push(taken)

    def __repr__(self) -> str:
        return f"StatisticalCorrector({len(self.history_lengths)} tables x {self.size})"
