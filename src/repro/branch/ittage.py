"""ITTAGE — indirect target predictor (Seznec, CBP-2 2011).

Tagged geometric-history tables whose entries store a *target* plus a
confidence counter, over a direct-mapped base target cache.  The baseline
uses a 64KB-class instance; UCP optionally adds a 4KB-class instance
(Alt-Ind) on the alternate path (paper Section IV-C), so like TAGE the
hashes run against a detachable history bundle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.history import GlobalHistory, PathHistory


@dataclass(frozen=True)
class ITTAGEConfig:
    n_tables: int = 8
    min_history: int = 4
    max_history: int = 160
    table_size_bits: int = 9
    tag_bits: int = 9
    confidence_bits: int = 2
    base_size_bits: int = 11

    @classmethod
    def small(cls) -> "ITTAGEConfig":
        """The ~4KB-class Alt-Ind geometry (paper Section IV-F)."""
        return cls(
            n_tables=5,
            max_history=64,
            table_size_bits=6,
            tag_bits=8,
            base_size_bits=8,
        )

    def history_lengths(self) -> list[int]:
        if self.n_tables == 1:
            return [self.min_history]
        ratio = (self.max_history / self.min_history) ** (1.0 / (self.n_tables - 1))
        lengths = []
        for i in range(self.n_tables):
            length = round(self.min_history * ratio**i)
            if lengths and length <= lengths[-1]:
                length = lengths[-1] + 1
            lengths.append(length)
        return lengths

    @property
    def storage_bits(self) -> int:
        # Entries store a target (assume 32 compressed bits), tag, confidence.
        per_entry = 32 + self.tag_bits + self.confidence_bits
        tagged = self.n_tables * (1 << self.table_size_bits) * per_entry
        base = (1 << self.base_size_bits) * 32
        return tagged + base


class ITTAGEHistories:
    """Detachable history bundle for ITTAGE hashing."""

    def __init__(self, config: ITTAGEConfig) -> None:
        lengths = config.history_lengths()
        self.global_history = GlobalHistory(capacity=lengths[-1] + 1)
        self.path = PathHistory(bits=16)
        self.index_folds = [
            self.global_history.add_folded(length, config.table_size_bits)
            for length in lengths
        ]
        self.tag_folds = [
            self.global_history.add_folded(length, config.tag_bits) for length in lengths
        ]

    def push(self, pc: int, taken: bool) -> None:
        self.global_history.push(taken)
        self.path.push(pc)

    def copy_from(self, other: "ITTAGEHistories") -> None:
        self.global_history.copy_from(other.global_history)
        self.path.restore(other.path.snapshot())


class ITTAGEPrediction:
    __slots__ = ("pc", "target", "hit_bank", "confidence", "indices", "tags", "base_index")

    def __init__(self) -> None:
        self.pc = 0
        self.target: int | None = None
        self.hit_bank: int | None = None
        self.confidence = 0
        self.indices: list[int] = []
        self.tags: list[int] = []
        self.base_index = 0

    @property
    def confident(self) -> bool:
        return self.confidence >= 1


class ITTAGE:
    """Indirect target predictor with tagged geometric tables."""

    def __init__(self, config: ITTAGEConfig | None = None) -> None:
        self.config = config or ITTAGEConfig()
        size = 1 << self.config.table_size_bits
        self._size_mask = size - 1
        self._tag_mask = (1 << self.config.tag_bits) - 1
        self._conf_max = (1 << self.config.confidence_bits) - 1
        n = self.config.n_tables
        self._tags = [[-1] * size for _ in range(n)]
        self._targets = [[0] * size for _ in range(n)]
        self._conf = [[0] * size for _ in range(n)]
        base_size = 1 << self.config.base_size_bits
        self._base_mask = base_size - 1
        self._base: list[int | None] = [None] * base_size
        self.histories = ITTAGEHistories(self.config)
        self._alloc_seed = 0x2545F491

    def make_histories(self) -> ITTAGEHistories:
        return ITTAGEHistories(self.config)

    def _index(self, pc: int, table: int, histories: ITTAGEHistories) -> int:
        fold = histories.index_folds[table].value
        path = histories.path.value & self._size_mask
        pc_bits = pc >> 2
        return (pc_bits ^ (pc_bits >> (table + 2)) ^ fold ^ (path >> (table & 3))) & self._size_mask

    def _tag(self, pc: int, table: int, histories: ITTAGEHistories) -> int:
        return ((pc >> 2) ^ histories.tag_folds[table].value) & self._tag_mask

    def predict(self, pc: int, histories: ITTAGEHistories | None = None) -> ITTAGEPrediction:
        histories = histories or self.histories
        pred = ITTAGEPrediction()
        pred.pc = pc
        pred.indices = [self._index(pc, t, histories) for t in range(self.config.n_tables)]
        pred.tags = [self._tag(pc, t, histories) for t in range(self.config.n_tables)]
        pred.base_index = (pc >> 2) & self._base_mask

        for table in range(self.config.n_tables - 1, -1, -1):
            if self._tags[table][pred.indices[table]] == pred.tags[table]:
                pred.hit_bank = table
                pred.target = self._targets[table][pred.indices[table]]
                pred.confidence = self._conf[table][pred.indices[table]]
                return pred
        pred.target = self._base[pred.base_index]
        return pred

    def update(self, pred: ITTAGEPrediction, actual_target: int) -> None:
        """Train on the resolved indirect branch (history pushed separately)."""
        correct = pred.target == actual_target
        if pred.hit_bank is not None:
            table, index = pred.hit_bank, pred.indices[pred.hit_bank]
            if correct:
                self._conf[table][index] = min(self._conf_max, self._conf[table][index] + 1)
            else:
                if self._conf[table][index] > 0:
                    self._conf[table][index] -= 1
                else:
                    self._targets[table][index] = actual_target
        self._base[pred.base_index] = actual_target

        if not correct:
            self._allocate(pred, actual_target)

    def _allocate(self, pred: ITTAGEPrediction, actual_target: int) -> None:
        start = (pred.hit_bank + 1) if pred.hit_bank is not None else 0
        if start >= self.config.n_tables:
            return
        self._alloc_seed = (self._alloc_seed * 1103515245 + 12345) & 0xFFFFFFFF
        skip = (self._alloc_seed >> 16) % 2
        candidates = list(range(start, self.config.n_tables))
        if skip and len(candidates) > 1:
            candidates = candidates[1:]
        for table in candidates:
            index = pred.indices[table]
            if self._conf[table][index] == 0:
                self._tags[table][index] = pred.tags[table]
                self._targets[table][index] = actual_target
                self._conf[table][index] = 1
                return
        for table in candidates:
            index = pred.indices[table]
            if self._conf[table][index] > 0:
                self._conf[table][index] -= 1

    def push_history(self, pc: int, taken: bool) -> None:
        self.histories.push(pc, taken)

    @property
    def storage_kb(self) -> float:
        return self.config.storage_bits / 8192

    def __repr__(self) -> str:
        return f"ITTAGE({self.config.n_tables} tables, ~{self.storage_kb:.1f}KB)"
